open Bmx_util

type 'v record = Set of Addr.t * 'v | Delete of Addr.t | Commit

(* A log entry as written to the simulated disk: the record plus the
   integrity metadata recovery verifies — a per-record checksum and a
   monotonically increasing slot number (a gap betrays a lost record
   even when every surviving record checksums clean). *)
type 'v entry = { e_seq : int; e_rec : 'v record; mutable e_chk : int }

type report = {
  r_scanned : int;
  r_verified : int;
  r_dropped : int;
  r_corrupt : int;
  r_lost : Addr.t list;
}

let clean_report = function
  | { r_dropped = 0; r_corrupt = 0; r_lost = []; _ } -> true
  | _ -> false

type 'v t = {
  copy : 'v -> 'v;
  (* Volatile state. *)
  mutable image : (Addr.t, 'v) Hashtbl.t;
  mutable tx : 'v record list option; (* buffered records, reversed *)
  (* Stable state (the simulated disk). *)
  mutable stable_image : (Addr.t, 'v) Hashtbl.t;
  mutable log : 'v entry list; (* newest first *)
  (* Superblock metadata: tiny, written in place, not addressable by the
     log fault API.  [next_seq]/[base_seq] anchor the slot sequence at
     both ends of the log — without them a fault that removes a boundary
     record leaves a contiguous-looking survivor log and the loss is
     silent.  [tx_index] is a name journal: the commit slot and address
     footprint of every committed transaction still in the log, enough
     for recovery to say {e which} addresses a destroyed record covered
     (never to restore their values). *)
  mutable next_seq : int; (* next log slot number *)
  mutable base_seq : int; (* slot the oldest log entry must carry *)
  mutable tx_index : (int * Addr.t list) list; (* newest first *)
  mutable last_recovery : report option;
      (* what the most recent [recover] had to drop — kept on the handle
         so an fsck pass can still name truncated addresses after the
         log entries themselves are gone *)
}

(* The checksum covers the slot number and the record bytes.  The stdlib
   polymorphic hash stands in for a real CRC: fault injection corrupts
   the stored bytes (modelled by perturbing the stored checksum), so
   verification only needs mismatch detection, not collision strength. *)
let digest seq rec_ = Hashtbl.hash (seq, Hashtbl.hash rec_)

let create ~copy () =
  {
    copy;
    image = Hashtbl.create 64;
    tx = None;
    stable_image = Hashtbl.create 64;
    log = [];
    next_seq = 1;
    base_seq = 1;
    tx_index = [];
    last_recovery = None;
  }

let begin_tx t =
  match t.tx with
  | Some _ -> failwith "Rvm.begin_tx: transaction already open"
  | None -> t.tx <- Some []

let in_tx t = t.tx <> None

let buffered t =
  match t.tx with
  | Some records -> records
  | None -> failwith "Rvm: no open transaction"

let set t a v = t.tx <- Some (Set (a, t.copy v) :: buffered t)
let delete t a = t.tx <- Some (Delete a :: buffered t)

let apply_record image copy = function
  | Set (a, v) -> Hashtbl.replace image a (copy v)
  | Delete a -> Hashtbl.remove image a
  | Commit -> ()

let append_entry t rec_ =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.log <- { e_seq = seq; e_rec = rec_; e_chk = digest seq rec_ } :: t.log

let touched_addrs records =
  List.filter_map
    (function Set (a, _) | Delete a -> Some a | Commit -> None)
    records
  |> List.sort_uniq Addr.compare

let commit t =
  let records = List.rev (buffered t) in
  t.tx <- None;
  List.iter (apply_record t.image t.copy) records;
  (* The append of data records plus the commit mark is the atomic step:
     recovery only honours commit-terminated prefixes. *)
  List.iter (append_entry t) records;
  append_entry t Commit;
  t.tx_index <- (t.next_seq - 1, touched_addrs records) :: t.tx_index

let abort t =
  ignore (buffered t);
  t.tx <- None

let get t a =
  (* Uncommitted buffered writes are visible, newest first. *)
  let rec in_buffer = function
    | [] -> None
    | Set (a', v) :: _ when Addr.equal a a' -> Some (Some (t.copy v))
    | Delete a' :: _ when Addr.equal a a' -> Some None
    | _ :: rest -> in_buffer rest
  in
  match t.tx with
  | Some records -> (
      match in_buffer records with
      | Some answer -> answer
      | None -> Option.map t.copy (Hashtbl.find_opt t.image a))
  | None -> Option.map t.copy (Hashtbl.find_opt t.image a)

let fold t ~init ~f = Hashtbl.fold (fun a v acc -> f a v acc) t.image init
let cardinal t = Hashtbl.length t.image

let crash t =
  t.image <- Hashtbl.create 64;
  t.tx <- None

let crash_mid_commit t =
  let records = List.rev (buffered t) in
  (* Data records reached the log; the commit mark did not. *)
  List.iter (append_entry t) records;
  crash t

(* ----------------------------------------------------- fault injection *)

(* Log positions are addressed oldest-first (position 0 is the oldest
   surviving entry), matching how an operator would read the log file. *)
let nth_newest_index t index =
  let len = List.length t.log in
  if index < 0 || index >= len then
    invalid_arg "Rvm: fault index out of log bounds";
  len - 1 - index

let flip_bits t ~index =
  let i = nth_newest_index t index in
  let e = List.nth t.log i in
  (* Bit rot in the stored record: the persisted bytes no longer match
     the checksum that was computed when they were written. *)
  e.e_chk <- e.e_chk lxor 0x2a

let drop_record t ~index =
  let i = nth_newest_index t index in
  t.log <- List.filteri (fun j _ -> j <> i) t.log

let truncate_mid_record t =
  (* A torn physical write at the log tail: the newest entry is gone and
     the partial overwrite mangled the one before it. *)
  match t.log with
  | [] -> ()
  | [ _ ] -> t.log <- []
  | _ :: (second :: _ as rest) ->
      t.log <- rest;
      second.e_chk <- second.e_chk lxor 0x55

(* ----------------------------------------------------------- recovery *)

let committed_of records =
  (* Oldest-first records belonging to commit-terminated transactions. *)
  (* [acc] and [pending] are newest-first; a trailing [pending] with no
     commit record is a torn tail and is dropped. *)
  let rec go acc pending = function
    | [] -> List.rev acc
    | Commit :: rest -> go (pending @ acc) [] rest
    | r :: rest -> go acc (r :: pending) rest
  in
  go [] [] records

let committed_records t =
  committed_of (List.rev_map (fun e -> e.e_rec) t.log)

let recover t =
  let oldest_first = List.rev t.log in
  let scanned = List.length oldest_first in
  (* Slots the superblock promised ([base_seq, next_seq)) but that are
     physically absent from the log: boundary drops and torn-off tails
     leave no entry behind, only this shortfall. *)
  let missing = max 0 (t.next_seq - t.base_seq - scanned) in
  (* Verify oldest-first: each entry must checksum clean and continue
     the slot sequence.  The sequence is anchored at the head — the
     first entry must carry [base_seq] — so a vanished oldest record can
     never leave a contiguous-looking survivor suffix accepted as clean.
     The first failure makes every later record boundary untrustworthy,
     so the whole suffix is unverifiable. *)
  let rec verify kept prev_seq corrupt = function
    | [] -> (List.rev kept, corrupt)
    | e :: rest ->
        if e.e_seq = prev_seq + 1 && e.e_chk = digest e.e_seq e.e_rec then
          verify (e :: kept) e.e_seq corrupt rest
        else (List.rev kept, corrupt + 1 + List.length rest)
  in
  let verified, corrupt = verify [] (t.base_seq - 1) 0 oldest_first in
  (* Truncate the surviving log to its last commit-terminated prefix:
     an unverifiable suffix or torn tail must not leak into the
     transaction that commits next. *)
  let rec commit_prefix acc pending = function
    | [] -> List.rev acc
    | ({ e_rec = Commit; _ } as e) :: rest ->
        commit_prefix (e :: pending @ acc) [] rest
    | e :: rest -> commit_prefix acc (e :: pending) rest
  in
  let kept = commit_prefix [] [] verified in
  let kept_tail =
    match kept with [] -> t.base_seq - 1 | _ :: _ -> (List.hd (List.rev kept)).e_seq
  in
  (* Committed transactions whose commit slot lies beyond the kept
     prefix lost their latest state.  The tail anchor matters here: when
     the newest entries were destroyed outright (say, a dropped commit
     record) the surviving log alone reads as a torn uncommitted tail —
     only the superblock shows the transaction had committed
     ([next_seq] outruns the last surviving slot) and the name journal
     still says which addresses it covered. *)
  let lost =
    List.filter (fun (cseq, _) -> cseq > kept_tail) t.tx_index
    |> List.concat_map snd
    |> List.sort_uniq Addr.compare
  in
  t.log <- List.rev kept;
  t.tx_index <- List.filter (fun (cseq, _) -> cseq <= kept_tail) t.tx_index;
  (* Truncation rewinds the append point: the next entry must continue
     the kept prefix's slot sequence, or the very next recovery would
     see a gap where the dropped suffix used to be. *)
  t.next_seq <- kept_tail + 1;
  let kept_committed = committed_of (List.map (fun e -> e.e_rec) kept) in
  let image = Hashtbl.create 64 in
  Hashtbl.iter (fun a v -> Hashtbl.replace image a (t.copy v)) t.stable_image;
  List.iter (apply_record image t.copy) kept_committed;
  t.image <- image;
  t.tx <- None;
  let report =
    {
      r_scanned = scanned;
      r_verified = List.length verified;
      r_dropped = scanned - List.length kept;
      r_corrupt = corrupt + missing;
      r_lost = lost;
    }
  in
  t.last_recovery <- Some report;
  report

let last_recovery t = t.last_recovery

let checkpoint t =
  if in_tx t then failwith "Rvm.checkpoint: transaction open";
  (* Stage the fold into a shadow image; installing the shadow and
     truncating the log is the atomic step.  A crash mid-checkpoint
     (see [crash_mid_checkpoint]) discards the half-written shadow and
     leaves the old stable image plus the intact log — never a
     half-applied stable image with the log already gone. *)
  let shadow = Hashtbl.create (Hashtbl.length t.stable_image) in
  Hashtbl.iter (fun a v -> Hashtbl.replace shadow a (t.copy v)) t.stable_image;
  List.iter (apply_record shadow t.copy) (committed_records t);
  t.stable_image <- shadow;
  t.log <- [];
  (* Re-anchor the head: the next entry appended is the oldest the log
     will hold, and the name journal only needs to cover what is still
     exposed to log faults. *)
  t.base_seq <- t.next_seq;
  t.tx_index <- []

let crash_mid_checkpoint t =
  if in_tx t then failwith "Rvm.crash_mid_checkpoint: transaction open";
  (* The shadow image was part-written when the crash struck: it is
     discarded unreferenced.  The old stable image and the log are both
     intact, so the checkpoint simply never happened. *)
  crash t

let log_length t = List.length t.log
