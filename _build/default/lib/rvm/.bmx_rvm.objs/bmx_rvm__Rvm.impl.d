lib/rvm/rvm.ml: Addr Bmx_util Hashtbl List Option
