lib/memory/heap_obj.ml: Addr Array Bmx_util Format Ids Value
