type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --------------------------------------------------------------- emit *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.12g keeps round numbers short but survives a round-trip for
           the magnitudes metrics produce. *)
        Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        items;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

(* -------------------------------------------------------------- parse *)

exception Syntax of string

let parse s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = raise (Syntax (Printf.sprintf "%s at offset %d" msg !i)) in
  let peek () = if !i < n then Some s.[!i] else None in
  let skip_ws () =
    while
      !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr i
    done
  in
  let expect_lit lit v =
    let l = String.length lit in
    if !i + l <= n && String.sub s !i l = lit then begin
      i := !i + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let hex4 () =
    if !i + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !i 4) in
    i := !i + 4;
    v
  in
  let parse_string () =
    (* Caller consumed the opening quote. *)
    let buf = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string"
      else
        match s.[!i] with
        | '"' -> incr i
        | '\\' ->
            incr i;
            (if !i >= n then fail "truncated escape"
             else
               match s.[!i] with
               | '"' -> Buffer.add_char buf '"'; incr i
               | '\\' -> Buffer.add_char buf '\\'; incr i
               | '/' -> Buffer.add_char buf '/'; incr i
               | 'b' -> Buffer.add_char buf '\b'; incr i
               | 'f' -> Buffer.add_char buf '\012'; incr i
               | 'n' -> Buffer.add_char buf '\n'; incr i
               | 'r' -> Buffer.add_char buf '\r'; incr i
               | 't' -> Buffer.add_char buf '\t'; incr i
               | 'u' ->
                   incr i;
                   let code = hex4 () in
                   let u =
                     match Uchar.of_int code with
                     | u -> u
                     | exception Invalid_argument _ -> Uchar.rep
                   in
                   Buffer.add_utf_8_uchar buf u
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            incr i;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !i in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !i < n && num_char s.[!i] do
      incr i
    done;
    let text = String.sub s start (!i - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> expect_lit "null" Null
    | Some 't' -> expect_lit "true" (Bool true)
    | Some 'f' -> expect_lit "false" (Bool false)
    | Some '"' ->
        incr i;
        String (parse_string ())
    | Some '[' ->
        incr i;
        skip_ws ();
        if peek () = Some ']' then begin
          incr i;
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr i;
                items := parse_value () :: !items;
                more ()
            | Some ']' -> incr i
            | _ -> fail "expected ',' or ']'"
          in
          more ();
          List (List.rev !items)
        end
    | Some '{' ->
        incr i;
        skip_ws ();
        if peek () = Some '}' then begin
          incr i;
          Obj []
        end
        else begin
          let binding () =
            skip_ws ();
            if peek () <> Some '"' then fail "expected object key";
            incr i;
            let k = parse_string () in
            skip_ws ();
            if peek () <> Some ':' then fail "expected ':'";
            incr i;
            (k, parse_value ())
          in
          let kvs = ref [ binding () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr i;
                kvs := binding () :: !kvs;
                more ()
            | Some '}' -> incr i
            | _ -> fail "expected ',' or '}'"
          in
          more ();
          Obj (List.rev !kvs)
        end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !i < n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Syntax m -> Error m
