module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store

let group t ~node =
  Store.mapped_bunches (Protocol.store (Gc_state.proto t) node)

let run t ~node ?bunches () =
  let bunches = match bunches with Some bs -> bs | None -> group t ~node in
  let r = Collect.run t ~node ~bunches ~group_mode:true () in
  Gc_state.sample_node_gauges t ~node;
  r
