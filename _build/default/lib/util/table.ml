type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row i)))
      0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row =
    "| "
    ^ String.concat " | " (List.map2 pad row widths)
    ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let print t = print_string (render t)
