(** From-space reuse (§4.5).

    After a local BGC, a from-space segment may still hold forwarding
    headers and live non-owned objects, so it cannot be recycled
    immediately.  To reuse or free it, the node (a) informs every node
    affected by the address changes recorded in the segment's forwarders,
    and (b) asks the owners of the remaining live objects to copy them out
    — then drops the segment wholesale.  Both the address-change messages
    and the copy requests are request/reply exchanges: §4.5 is explicit
    that the segment is reused only "once the local node receives the
    replies".  These are the collector's only synchronous round-trips,
    and they happen off the application's critical path. *)

type report = {
  q_segments_freed : int;
  q_bytes_freed : int;
  q_forwarders_dropped : int;
  q_copy_requests : int;  (** live non-owned objects evacuated by owners *)
  q_updates_broadcast : int;  (** address-change exchanges acknowledged *)
}

val run :
  Gc_state.t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> report
(** Free every from-space segment of the bunch's local replica. *)
