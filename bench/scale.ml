(* E20: scalability sweep — objects-per-bunch × nodes.

   The paper's performance story (§4.3–§4.4, §8) is that BGC costs stay
   local and cleaner traffic stays background; this experiment measures
   whether the reproduction scales past toy sizes.  Each configuration
   runs the mixed mutator workload interleaved with collector waves
   (as E5/E6 do) and reports wall-clock throughput, GC pause
   percentiles (virtual time, via bmx_obs spans), and wire totals.  A
   steady-state phase then runs light-churn cleaner cycles to compare
   delta-table bytes against full-table bytes.

   Output: a table per run plus a machine-readable BENCH_SCALE.json
   (also echoed as one "BENCH {...}" line per configuration for the
   perf-trajectory scraper). *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Net = Bmx_netsim.Net
module Json = Bmx_obs.Json
module Driver = Bmx_workload.Driver

type run_result = {
  r_nodes : int;
  r_objects_per_bunch : int;
  r_ops : int;
  r_elapsed_ms : float;
  r_ops_per_sec : float;
  r_gc_pause : Bmx_obs.Metrics.summary option;
  r_messages : int;
  r_bytes : int;
  r_stub_table_msgs : int;
  r_delta_bytes : int;
  r_full_bytes : int;
  r_steady_delta_bytes : int;
  r_steady_full_bytes : int;
  r_full_sent : int;
  r_delta_sent : int;
  r_resyncs : int;
  r_gc_token_acquires : int;
  r_minor_words_per_op : float;
  r_components : (Net.Component.t * int) list;
}

let now_ns () = Monotonic_clock.now ()

(* One collector wave: BGC every replicated bunch at every holder, then
   drain — the E5/E6 shape, kept identical so throughput numbers include
   collection work. *)
let gc_wave c =
  List.iter
    (fun bunch ->
      List.iter
        (fun node -> ignore (Cluster.bgc ~economical:true c ~node ~bunch))
        (Protocol.bunch_replica_nodes (Cluster.proto c) bunch))
    (Protocol.bunches (Cluster.proto c));
  ignore (Cluster.drain c)

let run_config ~nodes ~objects_per_bunch ~ops ~waves =
  let cfg =
    {
      Driver.default with
      nodes;
      bunches = nodes;
      objects_per_bunch;
      ops;
      seed = 20;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  (* Continuous sampling stays ON during the measured loop: the
     @bench-smoke throughput/allocation floors double as the
     observer-effect budget for the telemetry path. *)
  let ts = Cluster.enable_timeseries c in
  let chunk = max 1 (ops / waves) in
  (* OCaml-runtime allocation attributable to the mutator loop itself
     (collector waves excluded): the flat-heap hot path is supposed to
     allocate O(1) words per op, and the smoke gate holds it there. *)
  let mutator_words = ref 0.0 in
  let t0 = now_ns () in
  for _ = 1 to waves do
    let w0 = Gc.minor_words () in
    Driver.run_ops d ~ops:chunk ();
    mutator_words := !mutator_words +. (Gc.minor_words () -. w0);
    gc_wave c
  done;
  ignore (Cluster.collect_until_quiescent c ());
  let t1 = now_ns () in
  let elapsed_ms = Int64.to_float (Int64.sub t1 t0) /. 1e6 in
  let stats = Cluster.stats c in
  let delta_before = Stats.get stats "tables.delta_bytes" in
  let full_before = Stats.get stats "tables.full_bytes" in
  (* Steady state: light churn between cleaner cycles.  With delta
     tables, Stub_table bytes here are O(churn), not O(table). *)
  for _ = 1 to 4 do
    Driver.run_ops d ~ops:20 ();
    gc_wave c
  done;
  Bmx_obs.Timeseries.freeze ts;
  let report =
    Bmx_obs.Report.of_events
      ~metrics:(Cluster.metrics c)
      (Trace_event.timed_events (Cluster.evlog c))
  in
  let net = Cluster.net c in
  {
    r_nodes = nodes;
    r_objects_per_bunch = objects_per_bunch;
    r_ops = ops;
    r_elapsed_ms = elapsed_ms;
    r_ops_per_sec =
      (if elapsed_ms <= 0.0 then 0.0
       else float_of_int ops /. (elapsed_ms /. 1000.0));
    r_gc_pause = Bmx_obs.Report.latency report "gc.pause";
    r_messages = Net.total_messages net;
    r_bytes = Net.total_bytes net;
    r_stub_table_msgs = Net.sent net Net.Stub_table;
    r_delta_bytes = delta_before;
    r_full_bytes = full_before;
    r_steady_delta_bytes = Stats.get stats "tables.delta_bytes" - delta_before;
    r_steady_full_bytes = Stats.get stats "tables.full_bytes" - full_before;
    r_full_sent = Stats.get stats "gc.cleaner.full_sent";
    r_delta_sent = Stats.get stats "gc.cleaner.delta_sent";
    r_resyncs = Stats.get stats "gc.cleaner.resyncs";
    r_gc_token_acquires =
      Stats.get stats "dsm.gc.acquire_read"
      + Stats.get stats "dsm.gc.acquire_write";
    r_minor_words_per_op =
      (let total = float_of_int (chunk * waves) in
       if total <= 0.0 then 0.0 else !mutator_words /. total);
    r_components =
      List.map
        (fun comp -> (comp, Net.component_bytes net comp))
        Net.Component.all;
  }

let summary_json = function
  | None -> Json.Null
  | Some s ->
      Json.Obj
        [
          ("n", Json.Int s.Bmx_obs.Metrics.s_count);
          ("p50", Json.Float s.Bmx_obs.Metrics.s_p50);
          ("p90", Json.Float s.Bmx_obs.Metrics.s_p90);
          ("p99", Json.Float s.Bmx_obs.Metrics.s_p99);
          ("max", Json.Float s.Bmx_obs.Metrics.s_max);
        ]

let result_json r =
  Json.Obj
    [
      ("nodes", Json.Int r.r_nodes);
      ("objects_per_bunch", Json.Int r.r_objects_per_bunch);
      ("ops", Json.Int r.r_ops);
      ("elapsed_ms", Json.Float r.r_elapsed_ms);
      ("ops_per_sec", Json.Float r.r_ops_per_sec);
      ("gc_pause_usteps", summary_json r.r_gc_pause);
      ("messages", Json.Int r.r_messages);
      ("bytes", Json.Int r.r_bytes);
      ("stub_table_msgs", Json.Int r.r_stub_table_msgs);
      ("tables_delta_bytes", Json.Int r.r_delta_bytes);
      ("tables_full_bytes", Json.Int r.r_full_bytes);
      ("steady_delta_bytes", Json.Int r.r_steady_delta_bytes);
      ("steady_full_bytes", Json.Int r.r_steady_full_bytes);
      ("full_msgs", Json.Int r.r_full_sent);
      ("delta_msgs", Json.Int r.r_delta_sent);
      ("resyncs", Json.Int r.r_resyncs);
      ("gc_token_acquires", Json.Int r.r_gc_token_acquires);
      ("minor_words_per_op", Json.Float r.r_minor_words_per_op);
      ( "components",
        Json.Obj
          (List.map
             (fun (comp, bytes) ->
               (Net.Component.to_string comp, Json.Int bytes))
             r.r_components) );
    ]

let sweep_json ?(extra_configs = []) results =
  Json.Obj
    [
      ("experiment", Json.String "e20");
      ("unit", Json.String "ops_per_sec_wallclock");
      ("configs", Json.List (List.map result_json results @ extra_configs));
    ]

(* Partitioned configuration for the smoke gate (§5 under degradation):
   split one node off mid-run, keep mutating and collecting on both
   sides of the cut, heal, and count the cleaner cycles the delta-table
   streams need before no further full-table resyncs happen.  The §5
   property — the collector acquires no DSM token — must survive the
   partition, and resync after heal must converge in a bounded number
   of cycles rather than degenerating into perpetual full tables. *)
let run_partitioned_config ~nodes ~objects_per_bunch ~ops =
  let cfg =
    {
      Driver.default with
      nodes;
      bunches = nodes;
      objects_per_bunch;
      ops;
      seed = 21;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  let stats = Cluster.stats c in
  Driver.run_ops d ~ops:(ops / 2) ();
  gc_wave c;
  let lone = nodes - 1 in
  let rest = List.filter (fun n -> n <> lone) (Cluster.nodes c) in
  Cluster.partition c ~groups:[ [ lone ]; rest ];
  Driver.run_ops d ~ops:(ops / 2) ();
  gc_wave c;
  gc_wave c;
  Cluster.heal_all_links c;
  ignore (Cluster.settle c);
  let rounds = ref 0 and quiet = ref false in
  while (not !quiet) && !rounds < 8 do
    let before =
      Stats.get stats "gc.cleaner.resyncs"
      + Stats.get stats "gc.cleaner.full_sent"
    in
    gc_wave c;
    incr rounds;
    if
      Stats.get stats "gc.cleaner.resyncs"
      + Stats.get stats "gc.cleaner.full_sent"
      = before
    then quiet := true
  done;
  Json.Obj
    [
      ("nodes", Json.Int nodes);
      ("objects_per_bunch", Json.Int objects_per_bunch);
      ("ops", Json.Int ops);
      ("partitioned", Json.Bool true);
      ( "gc_token_acquires",
        Json.Int
          (Stats.get stats "dsm.gc.acquire_read"
          + Stats.get stats "dsm.gc.acquire_write") );
      ("heal_resync_rounds", Json.Int !rounds);
      ("converged", Json.Bool !quiet);
    ]

let run_sweep ?(extra_configs = []) ~configs ~json_path () =
  let t =
    Table.create
      ~title:
        "E20 (§4.3/§8): scalability sweep — wall-clock throughput with \
         collector waves, GC pause p99 (virtual µsteps), wire totals and \
         steady-state cleaner bytes"
      ~columns:
        [
          "nodes";
          "objs/bunch";
          "ops";
          "ms";
          "ops/sec";
          "gc p99";
          "msgs";
          "steady delta B";
          "steady full B";
          "gc tokens";
          "alloc w/op";
        ]
  in
  let results =
    List.map
      (fun (nodes, objects_per_bunch, ops) ->
        let r = run_config ~nodes ~objects_per_bunch ~ops ~waves:4 in
        Table.add_row t
          [
            string_of_int r.r_nodes;
            string_of_int r.r_objects_per_bunch;
            string_of_int r.r_ops;
            Printf.sprintf "%.1f" r.r_elapsed_ms;
            Printf.sprintf "%.0f" r.r_ops_per_sec;
            (match r.r_gc_pause with
            | Some s -> Printf.sprintf "%.0f" s.Bmx_obs.Metrics.s_p99
            | None -> "-");
            string_of_int r.r_messages;
            string_of_int r.r_steady_delta_bytes;
            string_of_int r.r_steady_full_bytes;
            string_of_int r.r_gc_token_acquires;
            Printf.sprintf "%.0f" r.r_minor_words_per_op;
          ];
        r)
      configs
  in
  let json = sweep_json ~extra_configs results in
  Printf.printf "BENCH %s\n" (Json.to_string json);
  (match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Json.to_string json);
      output_string oc "\n";
      close_out oc);
  [ t ]

(* Full sweep: the largest configuration is 64× the default
   objects-per-bunch and 4× the default node count (65536 objects) —
   feasible only because the driver's legality memo and the collectors'
   copy paths are no longer superlinear in the heap. *)
let e20 () =
  run_sweep
    ~configs:
      [
        (4, 64, 2000);
        (4, 320, 3000);
        (6, 640, 4000);
        (8, 1280, 5000);
        (16, 4096, 8000);
      ]
    ~json_path:(Some "BENCH_SCALE.json") ()

(* Phase timing at one configuration, with Perfcount deltas — the
   HACKING.md profiling recipe packaged as a command
   (`dune exec bench/main.exe -- e20-diag [nodes objs_per_bunch]`).
   Prints where a sweep leg's wall-clock goes: setup, mutator chunk,
   one collector wave, one full gc_round, quiescence.  Counters name
   the culprit when one of those is superlinear in the heap. *)
let e20_diag_at ~nodes ~objects_per_bunch =
  let module P = Perfcount in
  let phase name f =
    let before = P.snapshot () in
    let t0 = now_ns () in
    let r = f () in
    let ms = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6 in
    let d = P.diff ~before ~after:(P.snapshot ()) in
    Printf.printf
      "%-22s %9.1f ms  gc_objs=%-9d gc_tbl=%-9d store_cells=%-9d        flat_words=%-10d reach=%-8d obs=%d
%!"
      name ms d.P.s_gc_objects_touched d.P.s_gc_table_entries
      d.P.s_store_cells_touched d.P.s_flat_words_copied
      d.P.s_reach_nodes_touched d.P.s_obs_sample_work;
    let pn =
      d.P.s_gc_ns_trace + d.P.s_gc_ns_flip + d.P.s_gc_ns_copy
      + d.P.s_gc_ns_scan + d.P.s_gc_ns_reconcile
    in
    if pn > 0 then
      Printf.printf
        "%-22s %12s gc-phase-ms: trace=%.1f flip=%.1f copy=%.1f scan=%.1f \
         reconcile=%.1f\n\
         %!"
        "" ""
        (float_of_int d.P.s_gc_ns_trace /. 1e6)
        (float_of_int d.P.s_gc_ns_flip /. 1e6)
        (float_of_int d.P.s_gc_ns_copy /. 1e6)
        (float_of_int d.P.s_gc_ns_scan /. 1e6)
        (float_of_int d.P.s_gc_ns_reconcile /. 1e6);
    r
  in
  Printf.printf "--- e20-diag: %d nodes x %d objs/bunch ---
%!" nodes
    objects_per_bunch;
  let cfg =
    {
      Driver.default with
      nodes;
      bunches = nodes;
      objects_per_bunch;
      seed = 20;
    }
  in
  let d = phase "setup" (fun () -> Driver.setup cfg) in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  phase "mutate 2000 ops" (fun () -> Driver.run_ops d ~ops:2000 ());
  phase "gc_wave (replicas)" (fun () -> gc_wave c);
  phase "gc_round (all nodes)" (fun () -> ignore (Cluster.gc_round c));
  phase "gc_round again" (fun () -> ignore (Cluster.gc_round c));
  phase "quiescence" (fun () -> ignore (Cluster.collect_until_quiescent c ()));
  let net = Cluster.net c in
  Printf.printf "net: %d msgs, %d bytes, %d events
%!"
    (Net.total_messages net) (Net.total_bytes net)
    (List.length (Trace_event.events (Cluster.evlog c)))

let e20_diag () =
  List.iter
    (fun (nodes, objects_per_bunch) -> e20_diag_at ~nodes ~objects_per_bunch)
    [ (8, 1280); (16, 4096) ];
  []

(* Miniature configuration for the @bench-smoke runtest alias, plus one
   partitioned run gating the degraded-mode invariants. *)
let e20_smoke () =
  run_sweep
    ~extra_configs:
      [ run_partitioned_config ~nodes:3 ~objects_per_bunch:48 ~ops:400 ]
    ~configs:[ (3, 48, 400) ] ~json_path:None ()

(* E24: per-component wire attribution across a node sweep — the
   scaling shape gate.  Every message kind is totally mapped to a
   component (dsm / gc-cleaner / gc-bgc / registry / rvm / app); a
   3-point sweep widening only the cluster checks that gc-cleaner
   traffic grows with sharing (it is O(inter-node references), which the
   sweep increases) while no other component's per-node bytes grow
   superlinearly in N.  Exits nonzero when a component breaks its
   scaling contract — this is how an accidental O(N) broadcast sneaks
   into a "background" path gets caught. *)
let e24 () =
  let point nodes =
    let cfg =
      {
        Driver.default with
        nodes;
        bunches = nodes;
        objects_per_bunch = 48;
        ops = 400;
        seed = 24;
      }
    in
    let d = Driver.setup cfg in
    let c = Driver.cluster d in
    let ts = Cluster.enable_timeseries c in
    Driver.run_ops d ();
    for _ = 1 to 3 do
      gc_wave c
    done;
    ignore (Cluster.collect_until_quiescent c ());
    Bmx_obs.Timeseries.freeze ts;
    Net.scaling_point (Cluster.net c) ~nodes
  in
  let sweep = [ 3; 4; 6 ] in
  let points = List.map point sweep in
  let rows, ok = Net.scaling_check points in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E24: per-component wire scaling — bytes/node across a %s-node \
            sweep (gc-cleaner must grow with sharing; nothing else \
            superlinear in N)"
           (String.concat "/" (List.map string_of_int sweep)))
      ~columns:
        [ "component"; "B/node first"; "B/node last"; "growth"; "verdict" ]
  in
  List.iter
    (fun (r : Net.scaling_row) ->
      Table.add_row t
        [
          Net.Component.to_string r.Net.sr_component;
          Printf.sprintf "%.0f" r.Net.sr_first_per_node;
          Printf.sprintf "%.0f" r.Net.sr_last_per_node;
          Printf.sprintf "%.2f" r.Net.sr_growth;
          (if r.Net.sr_ok then "ok" else "FAIL")
          ^ (if r.Net.sr_note = "" then "" else " — " ^ r.Net.sr_note);
        ])
    rows;
  if not ok then begin
    Table.print t;
    prerr_endline "e24: per-component scaling check failed";
    exit 1
  end;
  [ t ]
