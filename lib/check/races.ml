open Bmx_util
module E = Trace_event
module Json = Bmx_obs.Json

type kind =
  | Race
  | Stale_read
  | Phantom_version
  | Gc_interference
  | Erasure_broken
  | Incomplete_trace

type finding = {
  kind : kind;
  at : int;
  node : int;
  uid : int;
  detail : string;
}

type t = {
  events : int;
  app_events : int;
  gc_events : int;
  reads : int;
  writes : int;
  weak_reads : int;
  objects : int;
  erasure_ok : bool;
  findings : finding list;
}

let kind_to_string = function
  | Race -> "race"
  | Stale_read -> "stale-read"
  | Phantom_version -> "phantom-version"
  | Gc_interference -> "gc-interference"
  | Erasure_broken -> "erasure-broken"
  | Incomplete_trace -> "incomplete-trace"

let finding_to_string f =
  Printf.sprintf "[%s] %s" (kind_to_string f.kind) f.detail

let pp_finding ppf f = Format.pp_print_string ppf (finding_to_string f)

let compare_finding a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.kind b.kind in
    if c <> 0 then c
    else
      let c = Int.compare a.node b.node in
      if c <> 0 then c
      else
        let c = Int.compare a.uid b.uid in
        if c <> 0 then c else String.compare a.detail b.detail

let normalize fs = List.sort_uniq compare_finding fs

(* ------------------------------------------------------------------ *)
(* Read mapping and race detection over annotated events.              *)

type obj_state = {
  (* Timestamp, version and node of the happens-before-maximal covered
     write seen so far. *)
  mutable last_write : (Hb.clock * int * int) option;
  (* Version the next covered read must observe; [None] after an
     ownership adoption until a write re-establishes the basis. *)
  mutable expected : int option;
  (* Per reader node, the join of its covered-read timestamps since the
     last covered write — the fronts a new write must dominate. *)
  fronts : (int, Hb.clock) Hashtbl.t;
}

type access_stats = {
  mutable a_reads : int;
  mutable a_writes : int;
  mutable a_weak : int;
}

type map_state = {
  m_objs : (int, obj_state) Hashtbl.t;
  mutable m_out : finding list;
  m_stats : access_stats option;
}

let map_create ?stats () =
  { m_objs = Hashtbl.create 64; m_out = []; m_stats = stats }

(* Replays one access-level event into the read-mapping state.  [clock]
   may be a live engine view; [retain] must make it safe to store
   ([Fun.id] when the caller already owns a private copy).  Processes
   every access, GC-actor ones included: in the full replay a GC write
   legitimately shifts the version basis, so that erasing it makes the
   application-anchored findings diverge — which is exactly what the
   erasure check trips on. *)
let map_step st ~retain ~at ev (clock : Hb.clock) =
  let add kind ~node ~uid fmt =
    Printf.ksprintf
      (fun detail -> st.m_out <- { kind; at; node; uid; detail } :: st.m_out)
      fmt
  in
  let obj uid =
    match Hashtbl.find_opt st.m_objs uid with
    | Some o -> o
    | None ->
        let o =
          { last_write = None; expected = None; fronts = Hashtbl.create 4 }
        in
        Hashtbl.add st.m_objs uid o;
        o
  in
  let tally f = match st.m_stats with Some s -> f s | None -> () in
  match ev with
  | E.Write_obs { node; uid; version; covered; _ } ->
      tally (fun s -> s.a_writes <- s.a_writes + 1);
      let o = obj uid in
      if covered then begin
        (match o.last_write with
        | Some (wvc, wver, wnode) when not (Hb.leq wvc clock) ->
            add Race ~node ~uid
              "event %d: write of o%d (v%d) at N%d unordered with the \
               write of v%d at N%d — write-write race"
              at uid version node wver wnode
        | _ -> ());
        Hashtbl.iter
          (fun rnode front ->
            if not (Hb.leq front clock) then
              add Race ~node ~uid
                "event %d: write of o%d (v%d) at N%d unordered with a \
                 covered read at N%d — read-write race"
                at uid version node rnode)
          o.fronts
      end;
      (* Covered or not, the write moves the version basis: an
         uncovered (token-less) write is reported as interference by
         the caller, and erasing it must perturb the mapping. *)
      o.last_write <- Some (retain clock, version, node);
      o.expected <- Some version;
      Hashtbl.reset o.fronts
  | E.Read_obs { node; uid; version; covered; _ } ->
      tally (fun s -> s.a_reads <- s.a_reads + 1);
      if not covered then
        tally (fun s -> s.a_weak <- s.a_weak + 1)
      else begin
        let o = obj uid in
        (match o.last_write with
        | Some (wvc, wver, wnode) when not (Hb.leq wvc clock) ->
            add Race ~node ~uid
              "event %d: covered read of o%d (v%d) at N%d unordered with \
               the write of v%d at N%d — read-write race"
              at uid version node wver wnode
        | _ -> ());
        (match o.expected with
        | Some ver when version < ver ->
            add Stale_read ~node ~uid
              "event %d: covered read of o%d at N%d observed v%d but the \
               happens-before-maximal write is v%d — stale read"
              at uid node version ver
        | Some ver when version > ver ->
            add Phantom_version ~node ~uid
              "event %d: covered read of o%d at N%d observed v%d, newer \
               than any recorded write (v%d) — phantom version"
              at uid node version ver
        | Some _ | None -> ());
        let front =
          match Hashtbl.find_opt o.fronts node with
          | Some f -> f
          | None ->
              let f = Array.make (Array.length clock) 0 in
              Hashtbl.add o.fronts node f;
              f
        in
        Array.iteri (fun k v -> if v > front.(k) then front.(k) <- v) clock
      end
  | E.Crash { node } ->
      (* The node's tokens died with it: later writes legally skip
         invalidating it, so its fronts must not accuse them. *)
      Hashtbl.iter (fun _ o -> Hashtbl.remove o.fronts node) st.m_objs
  | E.Owner_adopted { node = _; uid } ->
      (* Recovery reseated ownership from a persistent image; the
         version chain restarts at the next write.  (Honest
         RVM-truncation staleness is checked by the recovery fsck,
         not here.) *)
      let o = obj uid in
      o.last_write <- None;
      o.expected <- None;
      Hashtbl.reset o.fronts
  | _ -> ()

let read_map ?stats infos =
  let st = map_create ?stats () in
  Array.iter
    (fun (i : Hb.info) -> map_step st ~retain:Fun.id ~at:i.idx i.ev i.clock)
    infos;
  (Hashtbl.length st.m_objs, st.m_out)

(* ------------------------------------------------------------------ *)
(* Certification.                                                      *)

let erased_key (f : finding) = (f.kind, f.at, f.node, f.uid, f.detail)

let certify ?(overflowed = false) events =
  let evs = Array.of_list events in
  let nodes = Hb.node_span evs in
  let n = Array.length evs in
  let stats = { a_reads = 0; a_writes = 0; a_weak = 0 } in
  (* One streaming pass collects everything the erasure check and the
     summary need: the read-mapping / race findings, direct interference
     findings (the collector acquiring tokens, holding one at a read, or
     writing a shared object), the app-event clock table, the erased
     replay input positions, the App/Gc tallies, and whether any
     GC-actor access exists at all.  Clocks are live engine views; the
     only retained copies are the write timestamps the read mapping
     stores and the flat app-clock matrix below. *)
  let st = map_create ~stats () in
  let interference = ref [] in
  (* Clock of the app event at trace position i (row i of a flat
     [n * nodes] matrix), valid iff [is_app.(i)] — the full replay's
     indices are the positions 0..n-1. *)
  let app_flat = Array.make (n * nodes) 0 in
  let is_app = Array.make n false in
  let app_pos = Array.make n 0 in
  let app_events = ref 0 and gc_events = ref 0 in
  let gc_access = ref false in
  Hb.scan ~nodes evs (fun idx actor clock ->
      let ev = evs.(idx) in
      (match actor with
      | E.App ->
          Array.blit clock 0 app_flat (idx * nodes) nodes;
          is_app.(idx) <- true;
          app_pos.(!app_events) <- idx;
          incr app_events
      | E.Gc -> incr gc_events);
      (match ev with
      | E.Acquire_start { actor = E.Gc; node; uid; tok } ->
          interference :=
            {
              kind = Gc_interference;
              at = idx;
              node;
              uid;
              detail =
                Printf.sprintf
                  "event %d: the collector acquired a %s token for o%d at N%d"
                  idx
                  (match tok with E.Read -> "read" | E.Write -> "write")
                  uid node;
            }
            :: !interference
      | E.Write_obs { actor = E.Gc; node; uid; version; _ } ->
          gc_access := true;
          interference :=
            {
              kind = Gc_interference;
              at = idx;
              node;
              uid;
              detail =
                Printf.sprintf
                  "event %d: the collector wrote o%d (v%d) at N%d — GC must \
                   never mutate application-visible state"
                  idx uid version node;
            }
            :: !interference
      | E.Read_obs { actor = E.Gc; node; uid; covered; _ } ->
          gc_access := true;
          if covered then
            interference :=
              {
                kind = Gc_interference;
                at = idx;
                node;
                uid;
                detail =
                  Printf.sprintf
                    "event %d: the collector read o%d at N%d under a held \
                     token — GC reads must be token-free"
                    idx uid node;
              }
              :: !interference
      | _ -> ());
      map_step st ~retain:Array.copy ~at:idx ev clock);
  let objects = Hashtbl.length st.m_objs in
  let full_findings = st.m_out in
  let interference = List.rev !interference in
  let clock_matches idx (clock : Hb.clock) =
    is_app.(idx)
    &&
    let base = idx * nodes in
    let same = ref true in
    for k = 0 to nodes - 1 do
      if app_flat.(base + k) <> clock.(k) then same := false
    done;
    !same
  in
  (* Erasure theorem: replay with every GC-classified event deleted and
     diff the application clocks and application-anchored findings. *)
  let indices = Array.sub app_pos 0 !app_events in
  let erased_evs = Array.map (fun p -> evs.(p)) indices in
  let reclassified idx =
    Printf.sprintf "application event %d was reclassified by the erasure replay"
      idx
  in
  let moved idx =
    Printf.sprintf
      "erasing GC events changed the vector clock of application event %d" idx
  in
  let clock_diff, map_diff =
    if not !gc_access then begin
      (* No GC-actor access events: once the clocks check out, the
         erased replay would feed [read_map] exactly the same
         access/crash/adoption sequence with identical timestamps, so
         its findings are identical by construction — a streaming
         (allocation-free) clock comparison is the whole theorem. *)
      let diff = ref None in
      (try
         Hb.scan ~nodes ~indices erased_evs (fun idx actor clock ->
             if actor <> E.App then begin
               diff := Some (reclassified idx);
               raise Exit
             end;
             if not (clock_matches idx clock) then begin
               diff := Some (moved idx);
               raise Exit
             end)
       with Exit -> ());
      (!diff, None)
    end
    else begin
      let erased = Hb.run ~nodes ~indices erased_evs in
      let diff = ref None in
      (try
         Array.iter
           (fun (i : Hb.info) ->
             if i.actor <> E.App then begin
               diff := Some (reclassified i.idx);
               raise Exit
             end;
             if not (clock_matches i.idx i.clock) then begin
               diff := Some (moved i.idx);
               raise Exit
             end)
           erased
       with Exit -> ());
      let map_diff =
        if !diff <> None then None
        else begin
          let _, erased_findings = read_map erased in
          let app_anchored fs =
            List.filter (fun f -> f.at >= 0 && f.at < n && is_app.(f.at)) fs
            |> List.map erased_key
            |> List.sort_uniq Stdlib.compare
          in
          if app_anchored full_findings = app_anchored erased_findings then
            None
          else
            Some
              "erasing GC events changed the application read mapping (races \
               / stale reads differ between the two replays)"
        end
      in
      (!diff, map_diff)
    end
  in
  let erasure_findings =
    match (clock_diff, map_diff) with
    | Some d, _ | None, Some d ->
        [ { kind = Erasure_broken; at = -1; node = -1; uid = -1; detail = d } ]
    | None, None -> []
  in
  let incomplete =
    if overflowed then
      [
        {
          kind = Incomplete_trace;
          at = -1;
          node = -1;
          uid = -1;
          detail =
            "the event log overflowed (or had unparseable lines); the trace \
             cannot be certified";
        };
      ]
    else []
  in
  {
    events = n;
    app_events = !app_events;
    gc_events = !gc_events;
    reads = stats.a_reads;
    writes = stats.a_writes;
    weak_reads = stats.a_weak;
    objects;
    erasure_ok = erasure_findings = [];
    findings =
      normalize (incomplete @ erasure_findings @ interference @ full_findings);
  }

let ok t = t.findings = []

let count k t =
  List.length (List.filter (fun f -> f.kind = k) t.findings)

let races t = count Race t
let stale_reads t = count Stale_read t

let to_text t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== happens-before certificate ==\n";
  Buffer.add_string buf
    (Printf.sprintf "events:          %d (%d app, %d gc)\n" t.events
       t.app_events t.gc_events);
  Buffer.add_string buf
    (Printf.sprintf "accesses:        %d reads (%d weak), %d writes on %d \
                     object(s)\n"
       t.reads t.weak_reads t.writes t.objects);
  Buffer.add_string buf
    (Printf.sprintf "races:           %d\n" (races t));
  Buffer.add_string buf
    (Printf.sprintf "stale reads:     %d\n" (stale_reads t));
  Buffer.add_string buf
    (Printf.sprintf "gc interference: %d\n" (count Gc_interference t));
  Buffer.add_string buf
    (Printf.sprintf "gc erasure:      %s\n"
       (if t.erasure_ok then "unchanged (theorem holds)" else "BROKEN"));
  Buffer.add_string buf
    (if ok t then "verdict:         CERTIFIED\n"
     else Printf.sprintf "verdict:         FAILED (%d finding(s))\n"
            (List.length t.findings));
  List.iter
    (fun f -> Buffer.add_string buf (finding_to_string f ^ "\n"))
    t.findings;
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ("events", Json.Int t.events);
      ("app_events", Json.Int t.app_events);
      ("gc_events", Json.Int t.gc_events);
      ("reads", Json.Int t.reads);
      ("weak_reads", Json.Int t.weak_reads);
      ("writes", Json.Int t.writes);
      ("objects", Json.Int t.objects);
      ("races", Json.Int (races t));
      ("stale_reads", Json.Int (stale_reads t));
      ("gc_interference", Json.Int (count Gc_interference t));
      ("erasure_ok", Json.Bool t.erasure_ok);
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("kind", Json.String (kind_to_string f.kind));
                   ("at", Json.Int f.at);
                   ("node", Json.Int f.node);
                   ("uid", Json.Int f.uid);
                   ("detail", Json.String f.detail);
                 ])
             t.findings) );
      ("ok", Json.Bool (ok t));
    ]
