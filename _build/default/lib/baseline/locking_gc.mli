(** Baseline: a strongly consistent copying collector.

    This is the comparator the paper argues against (§9: Le Sergent's
    extension of a multiprocessor collector to DSM, where objects are kept
    strongly consistent and the collector locks objects while scanning and
    copying).  It reuses the same tracing engine as the BGC but first
    {b acquires the write token for every local object of the bunch},
    making all replicas single-copy before collecting:

    - every acquire is DSM traffic attributed to the collector
      ([dsm.gc.*] counters);
    - every write acquire invalidates all outstanding read copies —
      exactly the working-set disruption §4.2 warns about;
    - the collection stops being independent per replica: the cost at the
      collecting node grows with the replication degree (experiment E8).

    After the token sweep every live object is locally owned, so the
    ordinary engine copies all of them. *)

val run :
  Bmx_gc.Gc_state.t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  Bmx_gc.Collect.report
(** Collect the bunch at [node] the strongly-consistent way.  Raises like
    {!Bmx_dsm.Protocol.acquire} if some token is held. *)

val run_world : Bmx_gc.Gc_state.t -> node:Bmx_util.Ids.Node.t -> Bmx_gc.Collect.report
(** Collect every bunch mapped at [node] at once after a full token sweep
    — the "entire address space at the same time" design §9 calls
    unscalable; used for the flip/pause comparison (E7). *)
