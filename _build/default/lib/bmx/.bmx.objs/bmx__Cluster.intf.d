lib/bmx/cluster.mli: Bmx_dsm Bmx_gc Bmx_memory Bmx_netsim Bmx_util
