open Bmx_util
module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value
module Graphgen = Bmx_workload.Graphgen
module Driver = Bmx_workload.Driver

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let test_linked_list_shape () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:5 in
  Cluster.add_root c ~node:0 head;
  (* Walk it. *)
  let rec walk addr n =
    match Cluster.read c ~node:0 addr 0 with
    | Value.Ref next when not (Addr.is_null next) -> walk next (n + 1)
    | Value.Ref _ -> n + 1
    | Value.Data _ -> Alcotest.fail "next field should be a pointer"
  in
  check_int "five cells" 5 (walk head 0)

let test_binary_tree_shape () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let root = Graphgen.binary_tree c ~node:0 ~bunch:b ~depth:3 in
  Cluster.add_root c ~node:0 root;
  let rec size addr =
    let child i =
      match Cluster.read c ~node:0 addr i with
      | Value.Ref a when not (Addr.is_null a) -> size a
      | Value.Ref _ -> 0
      | Value.Data _ -> 0
    in
    1 + child 0 + child 1
  in
  check_int "complete tree of depth 3" 15 (size root)

let test_ring_is_cyclic () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let first = Graphgen.ring c ~node:0 ~bunch:b ~len:4 in
  Cluster.add_root c ~node:0 first;
  let rec walk addr n =
    if n = 0 then addr
    else
      match Cluster.read c ~node:0 addr 0 with
      | Value.Ref next -> walk next (n - 1)
      | Value.Data _ -> Alcotest.fail "ring broken"
  in
  check_bool "walking len steps returns to start" true
    (Cluster.ptr_eq c ~node:0 first (walk first 4))

let test_cross_bunch_ring_spans_bunches () =
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let _ = Graphgen.cross_bunch_ring c ~node:0 ~bunches:[ b1; b2 ] ~len:4 in
  (* Cross-bunch edges exist iff the barrier made stubs in both. *)
  check_bool "stubs in both directions" true
    (Bmx_gc.Gc_state.inter_stubs (Cluster.gc c) ~node:0 ~bunch:b1 <> []
    && Bmx_gc.Gc_state.inter_stubs (Cluster.gc c) ~node:0 ~bunch:b2 <> [])

let test_random_graph_cross_refs () =
  let c = Cluster.create ~nodes:1 () in
  let bunches = List.init 3 (fun _ -> Cluster.new_bunch c ~home:0) in
  let rng = Rng.make 1 in
  let objs =
    Graphgen.random_graph c ~rng ~node:0 ~bunches ~objects:60 ~out_degree:2
      ~cross_bunch_prob:0.5
  in
  check_int "all objects built" 60 (Array.length objs);
  let stubs =
    List.concat_map
      (fun b -> Bmx_gc.Gc_state.inter_stubs (Cluster.gc c) ~node:0 ~bunch:b)
      bunches
  in
  check_bool "cross-bunch references got stubs" true (List.length stubs > 0)

let test_driver_runs_and_stays_safe () =
  let d = Driver.setup { Driver.default with ops = 500; seed = 3 } in
  Driver.run_ops d ();
  let c = Driver.cluster d in
  check_bool "safety after mixed workload" true (Result.is_ok (Bmx.Audit.check_safety c));
  check_bool "roots tracked" true (Driver.live_roots d > 0);
  (* GC everything a few rounds; still safe; garbage shrinks. *)
  let before = Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c) in
  let reclaimed = Cluster.collect_until_quiescent c () in
  let after = Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c) in
  check_bool "collection made progress" true (reclaimed >= 0 && after <= before);
  check_bool "safety after collection" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_driver_deterministic () =
  let run () =
    let d = Driver.setup { Driver.default with ops = 300; seed = 9 } in
    Driver.run_ops d ();
    let c = Driver.cluster d in
    ( Bmx_netsim.Net.total_messages (Cluster.net c),
      Bmx.Audit.total_cached_copies c )
  in
  let a = run () and b = run () in
  check (Alcotest.pair Alcotest.int Alcotest.int) "same seed, same trace" a b

let test_driver_eager_policy () =
  let d =
    Driver.setup
      {
        Driver.default with
        ops = 300;
        seed = 6;
        update_policy = Bmx_dsm.Protocol.Eager;
      }
  in
  Driver.run_ops d ~ops:150 ();
  ignore (Cluster.gc_round (Driver.cluster d));
  Driver.run_ops d ~ops:150 ();
  let c = Driver.cluster d in
  ignore (Cluster.collect_until_quiescent c ());
  check_bool "safe under the eager update policy" true
    (Result.is_ok (Bmx.Audit.check_safety c))

let test_oo7_shallow_config () =
  let module Oo7 = Bmx_workload.Oo7 in
  let c = Cluster.create ~nodes:1 () in
  let cfg = { Oo7.default with Oo7.levels = 1; assembly_fanout = 2 } in
  let m = Oo7.build c ~node:0 cfg in
  (* 2 bases * 3 comps * 8 atomics. *)
  check_int "shallow module traverses fully" 48 (Oo7.t1 m ~node:0)

let test_driver_interleaved_gc () =
  let d = Driver.setup { Driver.default with ops = 200; seed = 4 } in
  let c = Driver.cluster d in
  for _ = 1 to 5 do
    Driver.run_ops d ~ops:100 ();
    ignore (Cluster.gc_round c);
    check_bool "safe at every interleaving point" true
      (Result.is_ok (Bmx.Audit.check_safety c))
  done

let () =
  Alcotest.run "workload"
    [
      ( "graphgen",
        [
          Alcotest.test_case "linked list" `Quick test_linked_list_shape;
          Alcotest.test_case "binary tree" `Quick test_binary_tree_shape;
          Alcotest.test_case "ring is cyclic" `Quick test_ring_is_cyclic;
          Alcotest.test_case "cross-bunch ring" `Quick test_cross_bunch_ring_spans_bunches;
          Alcotest.test_case "random graph" `Quick test_random_graph_cross_refs;
        ] );
      ( "driver",
        [
          Alcotest.test_case "mixed workload stays safe" `Quick
            test_driver_runs_and_stays_safe;
          Alcotest.test_case "deterministic by seed" `Quick test_driver_deterministic;
          Alcotest.test_case "GC interleaved with mutators" `Quick
            test_driver_interleaved_gc;
          Alcotest.test_case "eager update policy" `Quick test_driver_eager_policy;
          Alcotest.test_case "shallow OO7 config" `Quick test_oo7_shallow_config;
        ] );
    ]
