test/test_gc.mli:
