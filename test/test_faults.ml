(* Randomized fault-injection soak: seeded runs mixing message loss and
   duplication with node crash/restart cycles, over the full platform
   (DSM + collector + persistence).  After the faults stop and every
   node has recovered, each run must converge to a state that passes the
   cluster-wide safety audit, the token-discipline audit and the trace
   linter — with nothing stuck on the wire.

   §6.1 argues the GC protocol needs only per-pair FIFO, tolerating loss
   by retransmission (rebroadcast) and duplicates by the cleaner's
   freshness clocks; §8 adds crash recovery from the RVM image.  This
   harness shakes both claims at once.

   50 seeds by default; pass --long (or set BMX_SOAK_LONG) for more. *)

open Bmx_util
module Net = Bmx_netsim.Net
module Cluster = Bmx.Cluster
module Persist = Bmx.Persist
module Protocol = Bmx_dsm.Protocol
module Registry = Bmx_memory.Registry
module Value = Bmx_memory.Value
module Lint = Bmx_check.Lint
module Races = Bmx_check.Races
module E = Trace_event

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool

(* BMX_CERTIFY=1 additionally runs the happens-before certifier
   (races, read mapping, GC erasure) over each soak's event trace.
   Opt-in: the certifier replays the whole log per seed, which the
   quick CI loop does not want to pay for every soak. *)
let certify_soaks = Sys.getenv_opt "BMX_CERTIFY" <> None

let certify_trace ~seed c =
  let log = Cluster.evlog c in
  let cert =
    Races.certify
      ~overflowed:(Trace_event.overflowed log)
      (Trace_event.events log)
  in
  if not (Races.ok cert) then
    Alcotest.failf "seed %d: certifier: %s" seed
      (String.concat "; "
         (List.map Races.finding_to_string cert.Races.findings))

let long_mode =
  Array.exists (fun a -> a = "--long") Sys.argv
  || Sys.getenv_opt "BMX_SOAK_LONG" <> None

let argv_without_long =
  Array.of_list (List.filter (fun a -> a <> "--long") (Array.to_list Sys.argv))

(* BMX_SOAK_SEEDS overrides the seed count outright (CI shards and
   bisection runs); --long/BMX_SOAK_LONG picks the bigger default. *)
let soak_seeds =
  match Sys.getenv_opt "BMX_SOAK_SEEDS" with
  | Some s -> int_of_string s
  | None -> if long_mode then 200 else 50

let ops_per_seed = if long_mode then 250 else 120

(* ------------------------------------------------------------- harness *)

type soak = {
  c : Cluster.t;
  rng : Rng.t;
  mutable objs : (Addr.t * int) list;  (** (address, bunch) *)
  disks : (int * int, Persist.disk) Hashtbl.t;  (** (node, bunch) -> disk *)
  shard_disks : Persist.shard_disk array;  (** per-shard carve journals *)
  mutable skipped : int;  (** ops refused because a needed peer was down *)
}

let live s = Cluster.live_nodes s.c
let pick s xs = List.nth xs (Rng.int s.rng (List.length xs))
let registry s = Protocol.registry (Cluster.proto s.c)

let shard_ids s = List.init (Registry.num_shards (registry s)) Fun.id
let up_shards s = List.filter (Registry.shard_up (registry s)) (shard_ids s)

let down_shards s =
  List.filter (fun sh -> not (Registry.shard_up (registry s) sh)) (shard_ids s)

let owner_alive s addr =
  match Bmx_dsm.Protocol.uid_of_addr (Cluster.proto s.c) addr with
  | None -> false
  | Some uid -> (
      match Cluster.owner_of s.c ~uid with
      | Some o -> Cluster.node_alive s.c o
      | None -> false)

(* Client operations can legitimately fail while a peer is unreachable
   (a broken probable-owner chain, a vanished copy): the platform's
   contract under partial failure is "fail the operation, never corrupt
   memory" — so the soak counts those refusals and the end-of-run audit
   is what actually decides. *)
let attempt s f = try f () with Failure _ -> s.skipped <- s.skipped + 1

(* The audit's view of what crashed nodes will bring back from their
   stable stores: one entry per uid found on a down node's disks,
   marked authoritative when that node checkpointed it as owner. *)
let stable_view s =
  let tbl = Ids.Uid_tbl.create 64 in
  let proto = Cluster.proto s.c in
  List.iter
    (fun node ->
      Hashtbl.iter
        (fun (n, _) disk ->
          if n = node then
            Bmx_rvm.Rvm.fold disk ~init:()
              ~f:(fun _ (_, (im : Bmx_memory.Heap_obj.image), _, owned) () ->
                let uid = im.Bmx_memory.Heap_obj.im_uid in
                let cell =
                  {
                    Bmx.Audit.sc_owned = owned;
                    sc_targets =
                      List.filter_map
                        (Bmx_dsm.Protocol.uid_of_addr proto)
                        (Bmx_memory.Heap_obj.image_pointers im);
                  }
                in
                (* An owned image outranks a stale-replica image of the
                   same object checkpointed by some other down node. *)
                match Ids.Uid_tbl.find_opt tbl uid with
                | Some prev when prev.Bmx.Audit.sc_owned && not owned -> ()
                | _ -> Ids.Uid_tbl.replace tbl uid cell))
        s.disks)
    (Net.down_nodes (Cluster.net s.c));
  tbl

(* The soak's remembered addresses model mutator-held references, and a
   real mutator can only name an object it can still navigate to from
   some root — holding a raw pointer outside the heap would have needed
   a root, which would have kept the object alive.  So every operation
   target is filtered through current reachability: picking a merely
   remembered address could resurrect garbage (or a stale pointer inside
   it) that the collector was right to reclaim. *)
let reachable_handles s =
  let reach = Bmx.Audit.union_reachable ~stable:(stable_view s) s.c in
  List.filter
    (fun (a, _) ->
      match Bmx_dsm.Protocol.uid_of_addr (Cluster.proto s.c) a with
      | Some uid ->
          Ids.Uid_set.mem uid reach
          && Bmx_dsm.Protocol.replica_nodes (Cluster.proto s.c) uid <> []
      | None -> false)
    s.objs

let pick_handle s =
  match reachable_handles s with [] -> None | hs -> Some (fst (pick s hs))

let checkpoint_node s node =
  List.iter
    (fun bunch ->
      let disk =
        match Hashtbl.find_opt s.disks (node, bunch) with
        | Some d -> d
        | None ->
            let d = Persist.create_disk () in
            Hashtbl.add s.disks (node, bunch) d;
            d
      in
      ignore (Persist.checkpoint ~gc_roots:true s.c ~node ~bunch disk))
    (Protocol.bunches (Cluster.proto s.c))

let recover_one s node =
  Cluster.restart_node s.c ~node;
  ignore
    (Persist.recover_node s.c ~node
       (List.filter_map
          (fun bunch -> Hashtbl.find_opt s.disks (node, bunch))
          (Protocol.bunches (Cluster.proto s.c))))

let setup seed =
  let rng = Rng.make (seed * 7919) in
  let nodes = 3 + Rng.int rng 2 in
  let shards = 1 + Rng.int rng 3 in
  let c = Cluster.create ~nodes ~shards ~seed ~trace_events:true () in
  let s =
    {
      c;
      rng;
      objs = [];
      disks = Hashtbl.create 16;
      (* Attach before any bunch exists: the journals snapshot nothing
         and then record every carve the run makes. *)
      shard_disks = Persist.attach_shard_journals c;
      skipped = 0;
    }
  in
  let n_bunches = 2 + Rng.int rng 2 in
  let bunches =
    List.init n_bunches (fun i -> Cluster.new_bunch c ~home:(i mod nodes))
  in
  List.iter
    (fun b ->
      let home = Protocol.bunch_home (Cluster.proto c) b in
      for _ = 1 to 5 do
        let a = Cluster.alloc c ~node:home ~bunch:b [| Value.Data 0; Value.nil |] in
        Cluster.add_root c ~node:home a;
        s.objs <- (a, b) :: s.objs
      done)
    bunches;
  (* Seed some cross-bunch references so SSP traffic exists from the
     start. *)
  for _ = 1 to 2 * n_bunches do
    let src, _ = pick s s.objs and tgt, _ = pick s s.objs in
    let home = pick s (live s) in
    attempt s (fun () ->
        let a = Cluster.acquire_write c ~node:home src in
        Cluster.write c ~node:home a 1 (Value.Ref tgt);
        Cluster.release c ~node:home a)
  done;
  ignore (Cluster.drain c);
  (* Fault the background GC/protocol traffic. *)
  let rate () = 0.05 +. (float_of_int (Rng.int rng 30) /. 100.) in
  List.iteri
    (fun i kind ->
      Net.set_fault (Cluster.net c) ~kind ~drop:(rate ()) ~dup:(rate ())
        ~rng:(Rng.make (seed + (31 * i))))
    [ Net.Stub_table; Net.Scion_message; Net.Addr_update ];
  s

let only_seed = Option.map int_of_string (Sys.getenv_opt "BMX_SOAK_ONLY")
let watch_uid = Option.map int_of_string (Sys.getenv_opt "BMX_SOAK_WATCH")
let dbg_ops = Sys.getenv_opt "BMX_SOAK_DEBUG" <> None

let dbg fmt =
  if dbg_ops then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr (fmt ^^ "\n%!")

let watch s op =
  match watch_uid with
  | None -> ()
  | Some uid ->
      let proto = Cluster.proto s.c in
      let cached = Bmx_dsm.Protocol.replica_nodes proto uid in
      let reach = Ids.Uid_set.mem uid (Bmx.Audit.union_reachable s.c) in
      Printf.eprintf "W op=%d u%d cached=[%s] owner=%s reach=%b\n%!" op uid
        (String.concat "," (List.map string_of_int cached))
        (match Cluster.owner_of s.c ~uid with
        | Some o -> string_of_int o
        | None -> "-")
        reach;
      let gc = Cluster.gc s.c in
      List.iter
        (fun n ->
          let dir = Bmx_dsm.Protocol.directory proto n in
          let ent =
            Ids.Node_set.elements (Bmx_dsm.Directory.entering dir uid)
          in
          let prot =
            List.concat_map
              (fun b ->
                List.filter_map
                  (fun (sc : Bmx_gc.Ssp.inter_scion) ->
                    if sc.Bmx_gc.Ssp.xs_target_uid = uid then
                      Some (Printf.sprintf "x%d" sc.Bmx_gc.Ssp.xs_src_node)
                    else None)
                  (Bmx_gc.Gc_state.inter_scions gc ~node:n ~bunch:b)
                @ List.filter_map
                    (fun (sc : Bmx_gc.Ssp.intra_scion) ->
                      if sc.Bmx_gc.Ssp.xn_uid = uid then
                        Some (Printf.sprintf "n%d" sc.Bmx_gc.Ssp.xn_owner_side)
                      else None)
                    (Bmx_gc.Gc_state.intra_scions gc ~node:n ~bunch:b))
              (Bmx_dsm.Protocol.bunches proto)
          in
          let exi =
            List.concat_map
              (fun b ->
                List.filter_map
                  (fun (u, tgt) ->
                    if u = uid then Some (Printf.sprintf "->%d" tgt) else None)
                  (Bmx_gc.Gc_state.current_exiting gc ~node:n ~bunch:b))
              (Bmx_dsm.Protocol.bunches proto)
          in
          if ent <> [] || prot <> [] || exi <> [] then
            Printf.eprintf "W   n%d ent=[%s] scion=[%s] exi=[%s]\n%!" n
              (String.concat "," (List.map string_of_int ent))
              (String.concat "," prot) (String.concat "," exi))
        (Bmx_dsm.Protocol.nodes proto)

let uid_str s a =
  match Bmx_dsm.Protocol.uid_of_addr (Cluster.proto s.c) a with
  | Some u -> "u" ^ string_of_int u
  | None -> Addr.to_string a

let step op s =
  let c = s.c in
  match Rng.int s.rng 124 with
  | r when r < 18 -> (
      (* Read access (weak: tolerates inconsistent copies). *)
      match pick_handle s with
      | None -> ()
      | Some a ->
          let node = pick s (live s) in
          dbg "OP %d weak-read %s @%d" op (uid_str s a) node;
          attempt s (fun () ->
              if owner_alive s a then
                ignore (Cluster.read c ~weak:true ~node a 0)))
  | r when r < 40 -> (
      (* Update: take the write token, store a fresh value or a pointer. *)
      match pick_handle s with
      | None -> ()
      | Some a ->
          let node = pick s (live s) in
          attempt s (fun () ->
              if owner_alive s a then begin
                let a' = Cluster.acquire_write c ~node a in
                (match
                   if Rng.int s.rng 100 < 50 then pick_handle s else None
                 with
                | Some tgt ->
                    dbg "OP %d write %s <- Ref %s @%d" op (uid_str s a)
                      (uid_str s tgt) node;
                    Cluster.write c ~node a' 1 (Value.Ref tgt)
                | None ->
                    dbg "OP %d write %s <- Data @%d" op (uid_str s a) node;
                    Cluster.write c ~node a' 0
                      (Value.Data (Rng.int s.rng 1000)));
                Cluster.release c ~node a'
              end))
  | r when r < 50 -> (
      (* Read token from wherever. *)
      match pick_handle s with
      | None -> ()
      | Some a ->
          let node = pick s (live s) in
          dbg "OP %d read %s @%d" op (uid_str s a) node;
          attempt s (fun () ->
              if owner_alive s a then begin
                let a' = Cluster.acquire_read c ~node a in
                ignore (Cluster.read c ~node a' 0);
                Cluster.release c ~node a'
              end))
  | r when r < 56 ->
      (* Fresh allocation at a live bunch home, sometimes rooted. *)
      let bunches =
        List.filter
          (fun b -> Cluster.node_alive c (Protocol.bunch_home (Cluster.proto c) b))
          (Protocol.bunches (Cluster.proto c))
      in
      if bunches <> [] then begin
        let b = pick s bunches in
        let home = Protocol.bunch_home (Cluster.proto c) b in
        (* A full segment forces a carve, which the bunch's registry
           shard refuses while crashed — degrade, don't corrupt. *)
        attempt s (fun () ->
            let a =
              Cluster.alloc c ~node:home ~bunch:b [| Value.Data 1; Value.nil |]
            in
            dbg "OP %d alloc %s b%d @%d" op (uid_str s a) b home;
            if Rng.int s.rng 100 < 70 then begin
              Cluster.add_root c ~node:home a;
              s.objs <- (a, b) :: s.objs
            end)
      end
  | r when r < 62 -> (
      (* Root churn: drop a root anywhere, or root a still-reachable
         object at a node that caches it. *)
      let node = pick s (live s) in
      if Rng.int s.rng 100 < 30 then begin
        let a, _ = pick s s.objs in
        dbg "OP %d unroot %s @%d" op (uid_str s a) node;
        Cluster.remove_root c ~node a
      end
      else
        match pick_handle s with
        | Some a
          when Bmx_memory.Store.resolve (Protocol.store (Cluster.proto c) node) a
               <> None ->
            dbg "OP %d root %s @%d" op (uid_str s a) node;
            Cluster.add_root c ~node a
        | Some _ | None -> ())
  | r when r < 72 ->
      (* Collection pressure: a full round, skipping dead nodes.  The
         collector carves to-space segments, so it holds off while any
         registry shard is down — a BGC dying mid-copy on a refused
         carve would be a worse failure mode than a postponed wave. *)
      if down_shards s = [] then begin
        dbg "OP %d gc_round" op;
        ignore (Cluster.gc_round c)
      end
      else s.skipped <- s.skipped + 1
  | r when r < 82 ->
      (* Let time pass: timers fire, retransmissions roll the dice. *)
      dbg "OP %d tick+drain" op;
      ignore (Cluster.tick ~dt:(1 + Rng.int s.rng 4) c);
      ignore (Cluster.drain c)
  | r when r < 88 ->
      (* Partial drain only — leaves interleavings for later. *)
      dbg "OP %d drain" op;
      ignore (Cluster.drain c)
  | r when r < 94 ->
      (* Crash a node (keep a majority up): checkpoint first — the
         stand-in for RVM's continuous logging — then fail-stop. *)
      let ls = live s in
      if List.length ls > 2 then begin
        let victim = pick s ls in
        dbg "OP %d crash %d" op victim;
        checkpoint_node s victim;
        Cluster.crash_node c ~node:victim
      end
  | r when r < 100 -> (
      (* Restart + recover a down node, if any.  Recovery may run inside
         a partition: adoption of cut-off objects is deferred and remote
         registrations ride the reliable channel until heal. *)
      match Net.down_nodes (Cluster.net c) with
      | [] -> ()
      | down ->
          let victim = pick s down in
          dbg "OP %d recover %d" op victim;
          recover_one s victim)
  | r when r < 106 ->
      (* Partition: sometimes a clean two-group split, sometimes a single
         directed cut (asymmetric — payloads one way, acks the other
         die). *)
      let ns = Cluster.nodes c in
      if Rng.int s.rng 100 < 50 then begin
        let a = pick s ns in
        dbg "OP %d partition {%d} | rest" op a;
        Cluster.partition c ~groups:[ [ a ]; List.filter (fun n -> n <> a) ns ]
      end
      else begin
        let a = pick s ns in
        let b = pick s (List.filter (fun n -> n <> a) ns) in
        dbg "OP %d cut %d->%d" op a b;
        Cluster.cut_link c ~src:a ~dst:b
      end
  | r when r < 112 -> (
      (* Heal: everything at once, or one random severed link. *)
      match Net.cut_pairs (Cluster.net c) with
      | [] -> ()
      | pairs ->
          if Rng.int s.rng 100 < 60 then begin
            dbg "OP %d heal all" op;
            Cluster.heal_all_links c
          end
          else begin
            let src, dst = pick s pairs in
            dbg "OP %d heal %d->%d" op src dst;
            Cluster.heal_link c ~src ~dst
          end)
  | r when r < 118 -> (
      (* Registry-service fault: fail-stop a shard.  Lookups keep
         answering out of the immutable-entry read cache; only carves
         at that shard refuse until recovery. *)
      match up_shards s with
      | [] -> ()
      | ups ->
          let sh = pick s ups in
          dbg "OP %d crash-shard %d" op sh;
          Cluster.crash_shard c ~shard:sh)
  | _ -> (
      (* Shard recovery: replay the carve journal at a live node, which
         adopts ownership.  Under a partition the split-brain guard may
         refuse the adoption — counted as a skip, retried later. *)
      match down_shards s with
      | [] -> ()
      | downs ->
          let sh = pick s downs in
          let node = pick s (live s) in
          dbg "OP %d recover-shard %d @%d" op sh node;
          attempt s (fun () ->
              ignore (Persist.recover_shard c ~shard:sh ~node s.shard_disks.(sh))))

(* With BMX_SOAK_PARANOID the safety audit runs after every op, so a
   violation is pinned to the op that caused it instead of surfacing at
   the end of the run — slow, but invaluable when a seed fails. *)
let paranoid = Sys.getenv_opt "BMX_SOAK_PARANOID" <> None

let debug_dump s =
  if Sys.getenv_opt "BMX_SOAK_DEBUG" <> None then begin
    List.iter
      (fun e -> Printf.eprintf "EV %s\n" (Trace_event.to_line e))
      (Cluster.events s.c);
    let proto = Cluster.proto s.c in
    List.iter
      (fun node ->
        let store = Protocol.store proto node in
        Printf.eprintf "NODE %d roots=[%s]\n" node
          (String.concat ","
             (List.map Addr.to_string (Cluster.roots s.c ~node)));
        Bmx_dsm.Directory.iter
          (Protocol.directory proto node)
          (fun r ->
            Printf.eprintf "  dir u%d %s%s prob=%d\n" r.Bmx_dsm.Directory.uid
              (Bmx_dsm.Directory.token_state_to_string
                 r.Bmx_dsm.Directory.state)
              (if r.Bmx_dsm.Directory.is_owner then " OWNER" else "")
              r.Bmx_dsm.Directory.prob_owner);
        List.iter
          (fun b ->
            List.iter
              (fun (a, (o : Bmx_memory.Heap_obj.t)) ->
                Printf.eprintf "  cell %s u%d b%d -> [%s]\n"
                  (Addr.to_string a) o.Bmx_memory.Heap_obj.uid
                  o.Bmx_memory.Heap_obj.bunch
                  (String.concat ","
                     (List.map
                        (fun p ->
                          match Protocol.uid_of_addr proto p with
                          | Some u -> "u" ^ string_of_int u
                          | None -> "?" ^ Addr.to_string p)
                        (Bmx_memory.Heap_obj.pointers o))))
              (Bmx_memory.Store.objects_of_bunch store b))
          (Protocol.bunches proto))
      (Protocol.nodes proto);
    flush stderr
  end

let soak_one seed =
  let s = setup seed in
  for op = 1 to ops_per_seed do
    step op s;
    watch s op;
    if paranoid then begin
      (* An object whose only copies were at a crashed node is not lost —
         it is on that node's stable store, awaiting recovery — and the
         reachability trace reads crashed owners through that store too. *)
      let lost = Bmx.Audit.lost_objects ~stable:(stable_view s) s.c in
      if not (Ids.Uid_set.is_empty lost) then begin
        debug_dump s;
        Alcotest.failf "seed %d: op %d lost %s" seed op
          (String.concat ","
             (List.map Ids.Uid.to_string (Ids.Uid_set.elements lost)))
      end
    end
  done;
  (* The faults stop; partitions heal; every node comes back; the
     cluster settles.  Heal first so recovery can register with (and
     adopt past) peers that were merely cut off. *)
  Net.clear_faults (Cluster.net s.c);
  Cluster.heal_all_links s.c;
  List.iter (fun n -> recover_one s n) (Net.down_nodes (Cluster.net s.c));
  (* Registry shards come back too (everything is healed, so adoption
     cannot hit the split-brain guard) — the quiescing collector below
     needs every shard serving carves. *)
  List.iter
    (fun sh ->
      let node = pick s (live s) in
      ignore (Persist.recover_shard s.c ~shard:sh ~node s.shard_disks.(sh)))
    (down_shards s);
  ignore (Cluster.settle s.c);
  ignore (Cluster.collect_until_quiescent s.c ());
  ignore (Cluster.settle s.c);
  let name fmt = Printf.sprintf ("seed %d: " ^^ fmt) seed in
  (match Bmx.Audit.check_safety s.c with
  | Ok () -> ()
  | Error m ->
      debug_dump s;
      Alcotest.failf "seed %d: safety audit: %s" seed m);
  (match Bmx.Audit.check_tokens s.c with
  | Ok () -> ()
  | Error m ->
      debug_dump s;
      Alcotest.failf "seed %d: token audit: %s" seed m);
  (match Lint.check_all (Cluster.proto s.c) with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "seed %d: linter: %s" seed (Lint.violation_to_string v));
  if certify_soaks then certify_trace ~seed s.c;
  (* Per-shard fsck honesty: every carve the journals witnessed must be
     present in the registry index — a shard crash/recovery cycle that
     silently dropped a range would surface here as a hole. *)
  Array.iteri
    (fun sh disk ->
      let fsck = Persist.verify_shard s.c ~shard:sh disk in
      check_int
        (Printf.sprintf "seed %d: shard %d fsck holes" seed sh)
        0
        (List.length fsck.Persist.s_missing))
    s.shard_disks;
  check_int (name "wire empty") 0 (Net.pending (Cluster.net s.c));
  check_int (name "no unacked reliable messages") 0
    (Net.unacked_count (Cluster.net s.c))

let test_soak () =
  match only_seed with
  | Some seed -> soak_one seed
  | None ->
      for seed = 1 to soak_seeds do
        soak_one seed
      done

(* --------------------------------------- the linter catches bad traces *)

(* Negative tests: hand-built traces modelling BROKEN recovery paths
   must be flagged by the new rules — shaking the checker, not the
   platform. *)

let has rule vs = List.exists (fun v -> v.Lint.rule = rule) vs

let test_lint_catches_dead_node_grant () =
  (* A write grant minted by a node that is down: a token resurrected
     from lost volatile state. *)
  let vs =
    Lint.run
      [
        E.Crash { node = 1 };
        E.Hook_ssp { granter = 1; requester = 2; uid = 7 };
        E.Grant_sent
          { granter = 1; requester = 2; uid = 7; tok = E.Write; updates = 0 };
      ]
  in
  check_bool "dead granter flagged" true (has Lint.Dead_node_activity vs);
  (* The same trace with a restart in between is legitimate. *)
  let vs =
    Lint.run
      [
        E.Crash { node = 1 };
        E.Restart { node = 1 };
        E.Hook_ssp { granter = 1; requester = 2; uid = 7 };
        E.Grant_sent
          { granter = 1; requester = 2; uid = 7; tok = E.Write; updates = 0 };
      ]
  in
  check_bool "clean after restart" false (has Lint.Dead_node_activity vs)

let test_lint_catches_dead_node_gc_and_sends () =
  let vs =
    Lint.run
      [
        E.Crash { node = 0 };
        E.Gc_begin { node = 0; group = false; bunches = [ 1 ] };
        E.Gc_end { node = 0; group = false; live = 1; reclaimed = 0 };
      ]
  in
  check_bool "collection at a dead node flagged" true
    (has Lint.Dead_node_activity vs);
  let vs =
    Lint.run
      [
        E.Crash { node = 0 };
        E.Msg_sent { src = 0; dst = 1; kind = "stub_table"; seq = 3; rel = false };
      ]
  in
  check_bool "send from a dead node flagged" true
    (has Lint.Dead_node_activity vs);
  (* Sending TO a dead node is legal — the message just evaporates. *)
  let vs =
    Lint.run
      [
        E.Crash { node = 1 };
        E.Msg_sent { src = 0; dst = 1; kind = "stub_table"; seq = 3; rel = false };
        E.Invalidate { src = 0; dst = 1; uid = 9 };
      ]
  in
  check_bool "send/invalidate to a dead node is clean" false
    (has Lint.Dead_node_activity vs)

let test_lint_catches_reliable_duplicate_handoff () =
  (* The reliable layer hands a message to the handler twice (duplicate
     suppression broken): delivered-seq repeats on a reliable stream. *)
  let del seq =
    E.Msg_delivered { src = 0; dst = 1; kind = "scion_message"; seq; rel = true }
  in
  let vs = Lint.run [ del 4; del 4 ] in
  check_bool "reliable duplicate handoff flagged" true (has Lint.Reliable_fifo vs);
  (* Reordered handoff too. *)
  let vs = Lint.run [ del 5; del 4 ] in
  check_bool "reliable reorder flagged" true (has Lint.Reliable_fifo vs);
  (* On an unreliable stream a repeat is a legal duplicate. *)
  let del_u seq =
    E.Msg_delivered { src = 0; dst = 1; kind = "stub_table"; seq; rel = false }
  in
  let vs = Lint.run [ del_u 4; del_u 4 ] in
  check_bool "unreliable duplicate is clean" false
    (has Lint.Fifo_order vs || has Lint.Reliable_fifo vs)

let test_broken_recovery_is_caught_end_to_end () =
  (* Deliberately break the recovery path of a real run — restore a
     crashed node's state but "forget" the Restart event, as a buggy
     recovery that resumes work on a node the rest of the cluster still
     believes dead — and check the linter refuses the trace. *)
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 a;
  let d = Persist.create_disk () in
  ignore (Persist.checkpoint ~gc_roots:true c ~node:0 ~bunch:b d);
  Cluster.crash_node c ~node:0;
  (* Broken recovery: bring the net back up WITHOUT the Restart event,
     then collect at the "dead" node. *)
  Net.set_up (Cluster.net c) 0;
  ignore (Persist.recover_node c ~node:0 [ d ]);
  ignore (Cluster.bgc c ~node:0 ~bunch:b);
  let vs = Lint.check_all (Cluster.proto c) in
  check_bool "zombie-node activity flagged" true (has Lint.Dead_node_activity vs)

let () =
  Alcotest.run ~argv:argv_without_long "faults"
    [
      ( "soak",
        [
          Alcotest.test_case
            (Printf.sprintf "%d seeded fault soaks (%d ops each)" soak_seeds
               ops_per_seed)
            `Slow test_soak;
        ] );
      ( "lint-negative",
        [
          Alcotest.test_case "dead-node grant caught" `Quick
            test_lint_catches_dead_node_grant;
          Alcotest.test_case "dead-node GC and sends caught" `Quick
            test_lint_catches_dead_node_gc_and_sends;
          Alcotest.test_case "reliable duplicate handoff caught" `Quick
            test_lint_catches_reliable_duplicate_handoff;
          Alcotest.test_case "broken recovery caught end-to-end" `Quick
            test_broken_recovery_is_caught_end_to_end;
        ] );
    ]
