lib/core/bgc.ml: Bmx_dsm Collect Gc_state List
