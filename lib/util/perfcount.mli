(** Hot-path work counters (the counter-instrumented build).

    Each subsystem bumps a field of {!counters} for every unit of work
    whose growth with heap size would make a per-op path superlinear:
    graph nodes visited by the driver's legality memo, objects touched by
    a collection, cells visited by whole-store iteration, work done while
    sampling gauges.  Increments are plain int stores — no allocation —
    so the counters stay on everywhere and the empirical-complexity tests
    (test_perf_model.ml) can assert per-op budgets.

    See HACKING.md "Performance" for the profiling recipe. *)

type t = {
  mutable memo_invalidations : int;
  mutable memo_full_rebuilds : int;
  mutable memo_resyncs : int;
  mutable reach_nodes_touched : int;
  mutable gc_objects_touched : int;
  mutable gc_table_entries : int;
  mutable store_cells_touched : int;
  mutable flat_words_copied : int;
  mutable obs_sample_work : int;
  mutable gc_ns_trace : int;
  mutable gc_ns_flip : int;
  mutable gc_ns_copy : int;
  mutable gc_ns_scan : int;
  mutable gc_ns_reconcile : int;
      (** [gc_ns_*]: wall-clock nanoseconds spent in each collector phase
          (trace / flip / copy / scan / cleaner-reconcile) — the
          metrics-backed replacement for the old BMX_GC_PHASE_TIMING
          stderr hack. *)
}

val counters : t
(** The global instance.  Bump fields directly:
    [Perfcount.(counters.reach_nodes_touched <- counters.reach_nodes_touched + 1)]. *)

type snapshot = {
  s_memo_invalidations : int;
  s_memo_full_rebuilds : int;
  s_memo_resyncs : int;
  s_reach_nodes_touched : int;
  s_gc_objects_touched : int;
  s_gc_table_entries : int;
  s_store_cells_touched : int;
  s_flat_words_copied : int;
  s_obs_sample_work : int;
  s_gc_ns_trace : int;
  s_gc_ns_flip : int;
  s_gc_ns_copy : int;
  s_gc_ns_scan : int;
  s_gc_ns_reconcile : int;
}

val snapshot : unit -> snapshot
val diff : before:snapshot -> after:snapshot -> snapshot
val reset : unit -> unit
val pp : Format.formatter -> snapshot -> unit
