open Bmx_util
module Cluster = Bmx.Cluster
module Net = Bmx_netsim.Net
module Value = Bmx_memory.Value

type choice = Deliver of Ids.Node.t * Ids.Node.t | Local of int

let choice_to_string = function
  | Deliver (src, dst) -> Printf.sprintf "N%d=>N%d" src dst
  | Local i -> Printf.sprintf "local#%d" i

type report = {
  schedules : int;
  truncated : bool;
  violations : (choice list * string) list;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%d schedule(s) explored%s, %d violation(s)"
    r.schedules
    (if r.truncated then " (truncated)" else "")
    (List.length r.violations);
  List.iter
    (fun (sched, msg) ->
      Format.fprintf ppf "@,  [%s] %s"
        (String.concat " " (List.map choice_to_string sched))
        msg)
    r.violations;
  Format.fprintf ppf "@]"

let default_check c =
  match Bmx.Audit.check_safety c with
  | Error _ as e -> e
  | Ok () -> Bmx.Audit.check_tokens c

let run ?(depth = 8) ?(max_schedules = 2000) ~build ?(locals = [])
    ?(check = default_check) () =
  let locals = Array.of_list locals in
  let schedules = ref 0 and truncated = ref false and violations = ref [] in
  let apply c = function
    | Deliver (src, dst) -> ignore (Net.step_pair (Cluster.net c) ~src ~dst)
    | Local i -> locals.(i) c
  in
  let rec dfs prefix =
    if !schedules >= max_schedules then truncated := true
    else begin
      (* Stateless exploration: replay the deterministic scenario from
         scratch, then apply the schedule prefix. *)
      let c = build () in
      List.iter (apply c) (List.rev prefix);
      let used i =
        List.exists (function Local j -> i = j | Deliver _ -> false) prefix
      in
      let choices =
        if List.length prefix >= depth then []
        else
          List.map
            (fun (s, d) -> Deliver (s, d))
            (Net.deliverable_pairs (Cluster.net c))
          @ (Array.to_list locals
            |> List.mapi (fun i _ -> i)
            |> List.filter_map (fun i -> if used i then None else Some (Local i))
            )
      in
      match choices with
      | [] ->
          (* Leaf: run any locals the schedule never placed, drain the
             rest of the network FIFO, and check the final state. *)
          Array.iteri
            (fun i f ->
              if not (used i) then begin
                f c;
                ignore (Cluster.drain c)
              end)
            locals;
          ignore (Cluster.drain c);
          incr schedules;
          let sched = List.rev prefix in
          List.iter
            (fun v ->
              violations := (sched, Lint.violation_to_string v) :: !violations)
            (Lint.check_all (Cluster.proto c));
          (match check c with
          | Ok () -> ()
          | Error m -> violations := (sched, m) :: !violations)
      | cs -> List.iter (fun ch -> dfs (ch :: prefix)) cs
    end
  in
  dfs [];
  {
    schedules = !schedules;
    truncated = !truncated;
    violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Built-in scenarios (mirroring the protection races of DESIGN.md §5
   pinned in test_races.ml, but left with their messages pending so the
   explorer owns the schedule). *)

(* An intra-bunch pointer stored at a node that never cached the target,
   then the target's root drops; only the barrier's entering
   registration protects it.  Locals: BGC at either node. *)
let uncached_store () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let s = Cluster.alloc c ~node:0 ~bunch:b [| Value.nil |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 s;
  let s1 = Cluster.acquire_write c ~node:1 s in
  Cluster.write c ~node:1 s1 0 (Value.Ref x);
  Cluster.release c ~node:1 s1;
  Cluster.remove_root c ~node:0 x;
  c

let uncached_store_locals =
  [
    (fun c -> ignore (Cluster.bgc c ~node:0 ~bunch:0));
    (fun c -> ignore (Cluster.bgc c ~node:1 ~bunch:0));
  ]

(* A reachability table queued before a registration but deliverable
   after it (race 4): the stale table must not cancel the registration,
   under any interleaving of the pending traffic and the owner's BGC. *)
let stale_table () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let s = Cluster.alloc c ~node:0 ~bunch:b [| Value.nil |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 s;
  let s1 = Cluster.acquire_read c ~node:1 s in
  Cluster.release c ~node:1 s1;
  ignore (Cluster.bgc c ~node:1 ~bunch:b);
  let s1' = Cluster.acquire_write c ~node:1 s1 in
  Cluster.write c ~node:1 s1' 0 (Value.Ref x);
  Cluster.release c ~node:1 s1';
  Cluster.remove_root c ~node:0 x;
  c

let stale_table_locals = [ (fun c -> ignore (Cluster.bgc c ~node:0 ~bunch:0)) ]

(* Two replicas of the same bunch collect concurrently: their stub
   tables cross on the wire while a root has just dropped.  Whatever
   order the tables (and the follow-up BGCs) land in, the freshly linked
   object must survive. *)
let crossing_tables () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let s = Cluster.alloc c ~node:0 ~bunch:b [| Value.nil |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 s;
  let s1 = Cluster.acquire_write c ~node:1 s in
  Cluster.write c ~node:1 s1 0 (Value.Ref x);
  Cluster.release c ~node:1 s1;
  ignore (Cluster.bgc c ~node:0 ~bunch:b);
  ignore (Cluster.bgc c ~node:1 ~bunch:b);
  Cluster.remove_root c ~node:0 x;
  c

let crossing_tables_locals =
  [
    (fun c -> ignore (Cluster.bgc c ~node:0 ~bunch:0));
    (fun c -> ignore (Cluster.bgc c ~node:1 ~bunch:0));
  ]

let builtin_scenarios =
  [
    ( "uncached-store",
      "intra-bunch store at a node without the target cached, root drops, \
       BGCs race the barrier registration",
      uncached_store,
      uncached_store_locals );
    ( "stale-table",
      "reachability table queued before a fresh registration races its \
       delivery (DESIGN.md race 4)",
      stale_table,
      stale_table_locals );
    ( "crossing-tables",
      "stub tables from two concurrent BGCs cross on the wire while a \
       root drops",
      crossing_tables,
      crossing_tables_locals );
  ]

let find_scenario name =
  List.find_map
    (fun (n, _, build, locals) ->
      if String.equal n name then Some (build, locals) else None)
    builtin_scenarios
