(* Hot-path work counters (the "counter-instrumented build").

   Wall-clock profiles say *that* a configuration is slow; these counters
   say *why*: each subsystem bumps a named counter for every unit of work
   whose growth with heap size would make a per-op path superlinear.  The
   counters are plain mutable ints on a global record — one add and one
   store per bump, no allocation, no branching on an "enabled" flag — so
   they stay on in production builds and the complexity tests
   (test_perf_model.ml) can assert per-op work budgets mechanically.

   The profiling recipe lives in HACKING.md ("Performance"): snapshot,
   run a workload slice, diff, divide by ops, compare two heap sizes.
   Any counter whose per-op value grows with the heap is the superlinear
   path to kill. *)

type t = {
  (* driver legality memo (lib/workload/driver.ml + reach.ml) *)
  mutable memo_invalidations : int;  (* removal epochs: root drops, edge overwrites *)
  mutable memo_full_rebuilds : int;  (* from-scratch BFS over the mirror graph *)
  mutable memo_resyncs : int;  (* full mirror re-extractions from the cluster *)
  mutable reach_nodes_touched : int;  (* graph nodes visited by queries/rebuilds *)
  (* collector (lib/core/collect.ml) *)
  mutable gc_objects_touched : int;  (* objects marked, copied or field-scanned *)
  mutable gc_table_entries : int;  (* stub/scion/exiting entries visited *)
  (* memory (lib/memory/store.ml, flatheap.ml) *)
  mutable store_cells_touched : int;  (* cells visited by whole-table iteration *)
  mutable flat_words_copied : int;  (* raw words blitted by GC copies *)
  (* observability (lib/core/gc_state.ml, lib/obs/timeseries.ml) *)
  mutable obs_sample_work : int;  (* cells/segments visited while sampling gauges *)
  (* collector phase timers (lib/core/collect.ml, scion_cleaner.ml).
     Nanoseconds of wall clock per phase; a timer is two Sys.time reads
     around the phase body, so the fields stay plain mutable ints. *)
  mutable gc_ns_trace : int;  (* root enumeration + reachability trace *)
  mutable gc_ns_flip : int;  (* space flip / forwarding setup *)
  mutable gc_ns_copy : int;  (* live-object evacuation *)
  mutable gc_ns_scan : int;  (* reference update + reclamation scan *)
  mutable gc_ns_reconcile : int;  (* stub/scion table emission + cleaner merge *)
}

let counters = {
  memo_invalidations = 0;
  memo_full_rebuilds = 0;
  memo_resyncs = 0;
  reach_nodes_touched = 0;
  gc_objects_touched = 0;
  gc_table_entries = 0;
  store_cells_touched = 0;
  flat_words_copied = 0;
  obs_sample_work = 0;
  gc_ns_trace = 0;
  gc_ns_flip = 0;
  gc_ns_copy = 0;
  gc_ns_scan = 0;
  gc_ns_reconcile = 0;
}

type snapshot = {
  s_memo_invalidations : int;
  s_memo_full_rebuilds : int;
  s_memo_resyncs : int;
  s_reach_nodes_touched : int;
  s_gc_objects_touched : int;
  s_gc_table_entries : int;
  s_store_cells_touched : int;
  s_flat_words_copied : int;
  s_obs_sample_work : int;
  s_gc_ns_trace : int;
  s_gc_ns_flip : int;
  s_gc_ns_copy : int;
  s_gc_ns_scan : int;
  s_gc_ns_reconcile : int;
}

let snapshot () = {
  s_memo_invalidations = counters.memo_invalidations;
  s_memo_full_rebuilds = counters.memo_full_rebuilds;
  s_memo_resyncs = counters.memo_resyncs;
  s_reach_nodes_touched = counters.reach_nodes_touched;
  s_gc_objects_touched = counters.gc_objects_touched;
  s_gc_table_entries = counters.gc_table_entries;
  s_store_cells_touched = counters.store_cells_touched;
  s_flat_words_copied = counters.flat_words_copied;
  s_obs_sample_work = counters.obs_sample_work;
  s_gc_ns_trace = counters.gc_ns_trace;
  s_gc_ns_flip = counters.gc_ns_flip;
  s_gc_ns_copy = counters.gc_ns_copy;
  s_gc_ns_scan = counters.gc_ns_scan;
  s_gc_ns_reconcile = counters.gc_ns_reconcile;
}

let diff ~before ~after = {
  s_memo_invalidations = after.s_memo_invalidations - before.s_memo_invalidations;
  s_memo_full_rebuilds = after.s_memo_full_rebuilds - before.s_memo_full_rebuilds;
  s_memo_resyncs = after.s_memo_resyncs - before.s_memo_resyncs;
  s_reach_nodes_touched = after.s_reach_nodes_touched - before.s_reach_nodes_touched;
  s_gc_objects_touched = after.s_gc_objects_touched - before.s_gc_objects_touched;
  s_gc_table_entries = after.s_gc_table_entries - before.s_gc_table_entries;
  s_store_cells_touched = after.s_store_cells_touched - before.s_store_cells_touched;
  s_flat_words_copied = after.s_flat_words_copied - before.s_flat_words_copied;
  s_obs_sample_work = after.s_obs_sample_work - before.s_obs_sample_work;
  s_gc_ns_trace = after.s_gc_ns_trace - before.s_gc_ns_trace;
  s_gc_ns_flip = after.s_gc_ns_flip - before.s_gc_ns_flip;
  s_gc_ns_copy = after.s_gc_ns_copy - before.s_gc_ns_copy;
  s_gc_ns_scan = after.s_gc_ns_scan - before.s_gc_ns_scan;
  s_gc_ns_reconcile = after.s_gc_ns_reconcile - before.s_gc_ns_reconcile;
}

let reset () =
  counters.memo_invalidations <- 0;
  counters.memo_full_rebuilds <- 0;
  counters.memo_resyncs <- 0;
  counters.reach_nodes_touched <- 0;
  counters.gc_objects_touched <- 0;
  counters.gc_table_entries <- 0;
  counters.store_cells_touched <- 0;
  counters.flat_words_copied <- 0;
  counters.obs_sample_work <- 0;
  counters.gc_ns_trace <- 0;
  counters.gc_ns_flip <- 0;
  counters.gc_ns_copy <- 0;
  counters.gc_ns_scan <- 0;
  counters.gc_ns_reconcile <- 0

let pp ppf s =
  Format.fprintf ppf
    "@[<v>memo: invalidations=%d rebuilds=%d resyncs=%d reach-touched=%d@,\
     gc: objects=%d table-entries=%d@,\
     memory: cells=%d words-copied=%d@,\
     obs: sample-work=%d@,\
     gc-phase-ns: trace=%d flip=%d copy=%d scan=%d reconcile=%d@]"
    s.s_memo_invalidations s.s_memo_full_rebuilds s.s_memo_resyncs
    s.s_reach_nodes_touched s.s_gc_objects_touched s.s_gc_table_entries
    s.s_store_cells_touched s.s_flat_words_copied s.s_obs_sample_work
    s.s_gc_ns_trace s.s_gc_ns_flip s.s_gc_ns_copy s.s_gc_ns_scan
    s.s_gc_ns_reconcile
