lib/core/collect.ml: Addr Array Bmx_dsm Bmx_memory Bmx_util Format Gc_state Hashtbl Ids List Option Queue Scion_cleaner Ssp Stats String
