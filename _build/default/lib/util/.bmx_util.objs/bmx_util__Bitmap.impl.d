lib/util/bitmap.ml: Addr Bytes Char Format
