(* E11/E12: Bechamel micro-benchmarks of the mechanisms the paper costs
   out: the write barrier (§3.2, citing Hosking et al.), copy/scan/alloc
   (§4.2), and the forwarding-aware pointer comparison (§4.2/§8). *)

open Bechamel
open Toolkit
module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value

let make_world () =
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let x1 = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Data 0; Value.Data 0 |] in
  let x2 = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Data 0 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b2 [| Value.Data 0 |] in
  Cluster.add_root c ~node:0 x1;
  Cluster.add_root c ~node:0 y;
  (c, b1, b2, x1, x2, y)

let test_data_store =
  Test.make ~name:"store: data word (barrier checks, no SSP)"
    (let c, _, _, x1, _, _ = make_world () in
     Staged.stage (fun () -> Cluster.write c ~node:0 x1 0 (Value.Data 42)))

let test_intra_store =
  Test.make ~name:"store: intra-bunch pointer (barrier, no SSP)"
    (let c, _, _, x1, x2, _ = make_world () in
     Staged.stage (fun () -> Cluster.write c ~node:0 x1 1 (Value.Ref x2)))

let test_inter_store =
  Test.make ~name:"store: inter-bunch pointer (barrier + SSP dedup)"
    (let c, _, _, x1, _, y = make_world () in
     Staged.stage (fun () -> Cluster.write c ~node:0 x1 1 (Value.Ref y)))

let test_raw_store =
  Test.make ~name:"store: raw (no barrier, DSM checks only)"
    (let c, _, _, x1, _, _ = make_world () in
     let proto = Cluster.proto c in
     Staged.stage (fun () ->
         Bmx_dsm.Protocol.write_field_raw proto ~node:0 x1 0 (Value.Data 7)))

let test_alloc =
  Test.make ~name:"alloc: 2-word object"
    (let c, b1, _, _, _, _ = make_world () in
     Staged.stage (fun () ->
         ignore (Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Data 1; Value.Data 2 |])))

let test_ptr_eq_direct =
  Test.make ~name:"ptr_eq: no forwarding"
    (let c, _, _, x1, x2, _ = make_world () in
     Staged.stage (fun () -> ignore (Cluster.ptr_eq c ~node:0 x1 x2)))

let test_ptr_eq_forwarded =
  Test.make ~name:"ptr_eq: through forwarder chain"
    (let c, b1, _, x1, _, _ = make_world () in
     let _ = Cluster.bgc c ~node:0 ~bunch:b1 in
     let x1' = Bmx_memory.Store.current_addr (Bmx_dsm.Protocol.store (Cluster.proto c) 0) x1 in
     Staged.stage (fun () -> ignore (Cluster.ptr_eq c ~node:0 x1 x1')))

let test_bgc_small =
  Test.make ~name:"BGC: 64-object bunch (copy+scan+tables)"
    (Staged.stage (fun () ->
         let c = Cluster.create ~nodes:1 () in
         let b = Cluster.new_bunch c ~home:0 in
         let h = Bmx_workload.Graphgen.linked_list c ~node:0 ~bunch:b ~len:64 in
         Cluster.add_root c ~node:0 h;
         ignore (Cluster.bgc c ~node:0 ~bunch:b)))

let benchmarks =
  [
    test_raw_store;
    test_data_store;
    test_intra_store;
    test_inter_store;
    test_alloc;
    test_ptr_eq_direct;
    test_ptr_eq_forwarded;
    test_bgc_small;
  ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let table =
    Bmx_util.Table.create
      ~title:"E11/E12: micro-costs (Bechamel, monotonic clock)"
      ~columns:[ "operation"; "ns/run" ]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock raw
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Bmx_util.Table.add_row table [ name; Printf.sprintf "%.1f" est ]
          | Some _ | None -> Bmx_util.Table.add_row table [ name; "n/a" ])
        analyzed)
    benchmarks;
  [ table ]
