module type ID = sig
  type t = int

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Make_id (P : sig
  val prefix : string
end) =
struct
  type t = int

  let compare = Int.compare
  let equal = Int.equal
  let hash = Hashtbl.hash
  let pp ppf t = Format.fprintf ppf "%s%d" P.prefix t
  let to_string t = P.prefix ^ string_of_int t
end

module Node = struct
  include Make_id (struct
    let prefix = "N"
  end)

  let invalid = -1
end

module Bunch = Make_id (struct
  let prefix = "B"
end)

module Uid = struct
  include Make_id (struct
    let prefix = "o"
  end)

  type gen = int ref

  let generator () = ref 0

  let fresh g =
    incr g;
    !g
end

module Int_key = struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
  let compare = Int.compare
end

module Node_tbl = Hashtbl.Make (Int_key)
module Bunch_tbl = Hashtbl.Make (Int_key)
module Uid_tbl = Hashtbl.Make (Int_key)
module Node_set = Set.Make (Int_key)
module Bunch_set = Set.Make (Int_key)
module Uid_set = Set.Make (Int_key)
