(** The BMX platform facade: a simulated cluster of nodes sharing a
    persistent, weakly consistent distributed memory with copying garbage
    collection.

    This is the API a BMX application links against (the BMX-client
    library of §8).  It wires together the substrates: the network
    simulator, the single-address-space segment registry, the
    entry-consistency protocol, and the collector — with the write barrier
    on every pointer store and the §5 invariants installed. *)

type t

val default_reliable : Bmx_netsim.Net.kind list
(** [[Scion_message; Addr_update]] — the background messages that mutate
    remote protocol state and therefore ride the reliable channel.  Stub
    tables are deliberately {e not} in the set: §6.1's design point is
    that rebroadcast plus the cleaner's per-(sender, bunch) freshness
    check tolerate their loss without acknowledgements. *)

val create :
  ?nodes:int ->
  ?shards:int ->
  ?mode:Bmx_dsm.Protocol.mode ->
  ?update_policy:Bmx_dsm.Protocol.update_policy ->
  ?seed:int ->
  ?trace_events:bool ->
  ?reliable:Bmx_netsim.Net.kind list ->
  unit ->
  t
(** A cluster of [nodes] (default 3) with ids [0 .. nodes-1].  [shards]
    (default 1) partitions the segment registry by address range
    ({!Bmx_memory.Registry}); shard [s] starts owned by node
    [s mod nodes], so with [shards = nodes] each bunch's home shard is
    its home node.  [mode] selects distributed (default) or centralized
    copy-sets; [seed] feeds the deterministic generators.
    [trace_events] (default [false]) turns on the typed event log from
    the first operation so the whole run can be replayed through the
    trace linter.  [reliable] (default {!default_reliable}) selects the
    message kinds carried with acknowledgement + retransmission
    semantics; pass [[]] for the bare §6.1 transport. *)

val proto : t -> Bmx_dsm.Protocol.t
val gc : t -> Bmx_gc.Gc_state.t
val net : t -> (int -> unit) Bmx_netsim.Net.t
val stats : t -> Bmx_util.Stats.registry

val metrics : t -> Bmx_obs.Metrics.t
(** The typed metrics registry every subsystem is wired to at creation:
    network occupancy gauges ({!Bmx_netsim.Net.set_metrics}), DSM
    copyset/grant histograms ({!Bmx_dsm.Protocol.set_metrics}) and
    per-node GC occupancy gauges ({!Bmx_gc.Gc_state.set_metrics}). *)

val enable_timeseries :
  ?window:int -> ?slots:int -> ?reservoir:int -> t -> Bmx_obs.Timeseries.t
(** Start continuous sampling: a {!Bmx_obs.Timeseries} attached to the
    cluster metrics registry and event log, with window closes driven by
    the network's virtual clock ({!Bmx_netsim.Net.set_tick_hook}).
    Idempotent — returns the existing series on later calls. *)

val timeseries : t -> Bmx_obs.Timeseries.t option

val enable_flight :
  ?per_node:int -> ?max_dumps:int -> t -> Bmx_obs.Flight.t
(** Attach a {!Bmx_obs.Flight} recorder to the event log (with the
    cluster metrics registry for dump snapshots).  Idempotent. *)

val flight : t -> Bmx_obs.Flight.t option

val tracer : t -> Bmx_util.Tracelog.t
(** The shared structured event trace (disabled by default); enable with
    {!Bmx_util.Tracelog.set_enabled} to record token grants, ownership
    transfers, invalidations, collections and cleaner activity. *)

val evlog : t -> Bmx_util.Trace_event.log
(** The typed event log shared by the protocol, the network and the
    collector — the input to the trace linter ([Bmx_check.Lint]). *)

val set_event_trace : t -> bool -> unit
(** Enable/disable recording into {!evlog}. *)

val events : t -> Bmx_util.Trace_event.t list
(** Recorded typed events, oldest first. *)

val rng : t -> Bmx_util.Rng.t
val nodes : t -> Bmx_util.Ids.Node.t list

val add_node : t -> Bmx_util.Ids.Node.t
(** Grow the cluster by one node; returns its id. *)

(** {1 Crash and restart (§8 fault tolerance)} *)

val crash_node : t -> node:Bmx_util.Ids.Node.t -> unit
(** Fail-stop crash: the node loses all volatile state — in-flight
    messages to and from it, its unacknowledged send buffers, every
    cached copy and token, its directory, roots and SSP tables.  Other
    nodes keep their (now possibly stale) records about it; reliable
    sends addressed to it keep being retried until it returns or the
    attempt cap abandons them.  Records a [Crash] trace event.
    Raises [Failure] if the node is already down. *)

val restart_node : t -> node:Bmx_util.Ids.Node.t -> unit
(** Bring a crashed node back with {e empty} volatile state and record a
    [Restart] trace event.  Recovering its durable contents is the
    caller's job: replay RVM with {!Bmx.Persist.recover_node} (or
    [Rvm.recover] + [Persist.restore] per bunch) after this returns.
    Raises [Invalid_argument] if the node is not down. *)

val node_alive : t -> Bmx_util.Ids.Node.t -> bool
val live_nodes : t -> Bmx_util.Ids.Node.t list

val crash_shard : t -> shard:int -> unit
(** Take a registry shard's allocation service down (the BMX-server
    daemon dying, as opposed to {!crash_node}'s loss of a node's DSM/GC
    volatile state — a crashed {e node}'s shards keep carving through a
    fail-stop regent, see {!create}).  While the shard is down,
    allocations routed to it raise [Failure]; lookups keep answering
    from the immutable-entry read cache.  Recovery is
    [Bmx.Persist.recover_shard] (journal replay + verify) followed by
    {!adopt_shard}, or {!adopt_shard} alone when the index is intact.
    Raises [Failure] if already down, [Invalid_argument] on an unknown
    shard. *)

val adopt_shard : t -> shard:int -> node:Bmx_util.Ids.Node.t -> unit
(** Re-seat a registry shard's ownership at [node] (typically after its
    owner crashed) and bring its allocation service back up.  Refuses
    with [Failure] — the PR 5 split-brain rule applied to shards —
    while the recorded owner is alive but unreachable from [node]:
    healing must never reveal two nodes carving the same address
    region.  Records a [Shard_adopted] trace event.  Replaying the
    shard's durable journal into the index is {!Bmx.Persist.recover_shard}'s
    job; adoption only moves ownership. *)

(** {1 Network partitions}

    Thin wrappers over the transport's link-cut model
    ({!Bmx_netsim.Net.cut_link}): a cut link blackholes traffic without
    either endpoint being down.  Both sides keep operating — GC keeps
    collecting locally-owned objects, the cleaner quarantines tables
    from unreachable senders — while cross-partition token operations
    and ownership adoption are refused (split-brain safety) until the
    partition heals.  Cuts and heals record [Link_cut] / [Link_heal]
    trace events. *)

val cut_link : t -> src:Bmx_util.Ids.Node.t -> dst:Bmx_util.Ids.Node.t -> unit
(** Sever the directed link [src → dst] only: cutting one direction
    gives an asymmetric partition (payloads arrive, acknowledgements
    die). *)

val heal_link : t -> src:Bmx_util.Ids.Node.t -> dst:Bmx_util.Ids.Node.t -> unit

val partition : t -> groups:Bmx_util.Ids.Node.t list list -> unit
(** Cut every directed link between nodes of different groups — a clean
    symmetric split.  Nodes absent from every group keep all their
    links.  Raises [Invalid_argument] on an unknown node. *)

val heal_all_links : t -> unit

val reachable : t -> Bmx_util.Ids.Node.t -> Bmx_util.Ids.Node.t -> bool
(** Both endpoints up and neither direction cut. *)

(** {1 Bunches} *)

val new_bunch : t -> home:Bmx_util.Ids.Node.t -> Bmx_util.Ids.Bunch.t
(** Create a bunch whose home (rendezvous) node is [home]; an initial
    segment is mapped there. *)

(** {1 Mutator operations}

    These are the operations the instrumented application performs (§8):
    allocation, token acquire/release, field access through the write
    barrier, and forwarding-aware pointer comparison. *)

val alloc :
  t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  Bmx_memory.Value.t array ->
  Bmx_util.Addr.t
(** Allocate and initialize an object.  Initializing stores run the write
    barrier, so inter-bunch references present at birth get their SSPs. *)

val acquire_read : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> Bmx_util.Addr.t
val acquire_write : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> Bmx_util.Addr.t
val release : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> unit

val demand_fetch : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> Bmx_util.Addr.t
(** Fault-driven access without tokens (§5): install an inconsistent
    copy supplied by the owner, with location updates piggybacked on the
    reply.  Read it with [read ~weak]. *)

val read : t -> ?weak:bool -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> int
  -> Bmx_memory.Value.t

val write :
  t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> int -> Bmx_memory.Value.t
  -> unit
(** Field store through the write barrier (§3.2). *)

val ptr_eq : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> Bmx_util.Addr.t -> bool

(** {1 Roots (persistence by reachability)} *)

val add_root : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> unit

val remove_root : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> unit
(** Remove one root naming the same object as the address (local
    collections rewrite stack roots through forwarders, so the caller's
    remembered address may be an older name for the rooted object). *)

val remove_root_checked :
  t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> bool
(** Like {!remove_root}, but reports whether a root was actually found
    and removed — callers mirroring the root set (the workload driver's
    incremental legality memo) must not assume a silent no-op
    succeeded. *)

val roots : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t list

(** {1 Garbage collection} *)

val bgc :
  ?economical:bool -> t -> node:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t -> Bmx_gc.Collect.report
(** One local collection.  [?economical] (default false) enables the
    skip-if-clean / no-evacuation-without-garbage fast path described at
    {!Bmx_gc.Bgc.run}; [gc_round] and {!collect_until_quiescent} always
    collect economically. *)

val ggc : t -> node:Bmx_util.Ids.Node.t -> Bmx_gc.Collect.report

val reclaim_from_space :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> Bmx_gc.Reclaim.report

val drain : t -> int
(** Deliver all pending background messages (stub tables, scion messages,
    address updates); returns how many were delivered. *)

val tick : ?dt:int -> t -> int
(** Advance the network's virtual clock (see {!Bmx_netsim.Net.tick});
    returns how many reliable messages were retransmitted. *)

val settle : ?max_rounds:int -> t -> int
(** Drain and keep advancing the clock until every reliable message is
    acknowledged or abandoned (see {!Bmx_netsim.Net.settle}); the
    fault-injection harness calls this after clearing faults to let
    retransmission repair the losses.  Returns messages delivered. *)

val gc_round : t -> int
(** One cluster-wide round: BGC on every replica of every bunch, then
    drain.  Returns the number of objects reclaimed in the round.
    Distributed acyclic garbage needs at most one round per ownerPtr hop;
    cross-replica chains converge in a few rounds (§6.2). *)

val collect_until_quiescent : t -> ?max_rounds:int -> unit -> int
(** Iterate {!gc_round} until (cluster size + 1) consecutive rounds
    reclaim nothing — zero-reclaim rounds can still shorten cleaner
    chains by one hop each — or until [max_rounds] (default scales with
    the cluster).  Returns total objects reclaimed. *)

(** {1 Introspection} *)

val uid_at : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> Bmx_util.Ids.Uid.t
(** Stable identity behind a (possibly forwarded) address. *)

val cached_at : t -> node:Bmx_util.Ids.Node.t -> uid:Bmx_util.Ids.Uid.t -> bool
val owner_of : t -> uid:Bmx_util.Ids.Uid.t -> Bmx_util.Ids.Node.t option
