(* bmx_lint — build-time layering lint (the @lint alias).

   Scans the given directories (default: the collector layer lib/core,
   plus bin/ and bench/, which must go through the Cluster facade) for
   calls into the DSM token API, which the collector must never make
   (§5).  Exit status 1 on any finding. *)

let () =
  let dirs =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "lib/core"; "bin"; "bench" ]
    | dirs -> dirs
  in
  let findings = List.concat_map Bmx_check.Layering.scan_dir dirs in
  match findings with
  | [] ->
      Printf.printf "layering lint: collector layer is token-free (%s)\n"
        (String.concat " " dirs)
  | fs ->
      List.iter
        (fun f -> Format.eprintf "%a@." Bmx_check.Layering.pp_finding f)
        fs;
      exit 1
