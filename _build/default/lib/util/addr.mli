(** Addresses in the BMX single address space.

    The paper assumes a 64-bit single address space spanning every node and
    secondary storage (§2.1).  We model addresses as OCaml [int]s (63 usable
    bits), which is plenty for any simulated heap while keeping address
    arithmetic free of boxing.  Addresses are byte-granular; objects are
    4-byte aligned, matching the 4-byte granularity of the object-map and
    reference-map bit arrays of §8. *)

type t = int

val null : t
(** The distinguished null address.  Never inside any segment. *)

val is_null : t -> bool

val word : int
(** Alignment and map granularity in bytes (4, per §8). *)

val page_size : int
(** Size in bytes of a virtual-memory page (4096). *)

val align_up : t -> t
(** [align_up a] is the smallest word-aligned address [>= a]. *)

val is_aligned : t -> bool

val add : t -> int -> t
(** [add a n] is the address [n] bytes past [a].  Raises [Invalid_argument]
    on overflow past the address-space top. *)

val diff : t -> t -> int
(** [diff hi lo] is [hi - lo] in bytes. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Half-open address ranges [\[lo, hi)] used for segments. *)
module Range : sig
  type addr := t
  type t = { lo : addr; hi : addr }

  val make : lo:addr -> size:int -> t
  (** Raises [Invalid_argument] if [size <= 0] or [lo] is unaligned. *)

  val size : t -> int
  val contains : t -> addr -> bool
  val overlaps : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
