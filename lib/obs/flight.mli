(** Flight recorder over the typed event stream.

    Keeps the last [per_node] events of every node in bounded rings and,
    when tripped, dumps the merged slice plus a metrics snapshot as a
    text artifact: ['#']-prefixed header lines ([reason], [at], one-line
    metrics JSON) followed by plain {!Bmx_util.Trace_event.to_line}
    event lines, so the slice replays directly through
    [bmxctl check --trace] / [certify --trace] (which skip ['#'] lines).

    Trips automatically on the §5 alarm (a [Gc]-actor token acquire —
    [gc_token_acquires] going nonzero) and on a truncating RVM recovery
    ([dropped] or [lost] nonzero); trip it externally (lint finding,
    audit loss, partition post-mortem) with {!trip}.  At most
    [max_dumps] artifacts are kept — later trips are dropped, keeping a
    trip storm bounded. *)

open Bmx_util

type t

type dump = {
  reason : string;  (** e.g. ["gc-token-acquire:n2:o17"] or a lint rule name *)
  at : int;  (** virtual µstep of the trip *)
  text : string;  (** the full artifact, ready to write to a file *)
}

val create : ?per_node:int -> ?max_dumps:int -> ?metrics:Metrics.t -> unit -> t
(** Defaults: 256 events per node, 4 dumps.  When [metrics] is given
    each dump embeds a full registry snapshot header. *)

val attach : t -> Trace_event.log -> unit
(** Tap a live event log. *)

val record : t -> int -> Trace_event.t -> unit
(** Feed one timed event by hand (what the tap calls); runs the
    automatic triggers. *)

val trip : t -> ?at:int -> string -> unit
(** Force a dump with the given reason (defaults [at] to the last
    recorded timestamp).  No-op once [max_dumps] is reached. *)

val dumps : t -> dump list
(** Oldest first. *)

val set_on_dump : t -> (dump -> unit) -> unit
(** Called on every dump as it is produced (e.g. to write it to disk —
    the library itself never touches the filesystem). *)

val nodes_of_event : Trace_event.t -> Ids.Node.t * Ids.Node.t option
(** Total attribution of an event to its node (and peer, for pair
    events) — a new constructor must be classified here or the build
    fails. *)
