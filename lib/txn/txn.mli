(** Transactions over the weakly consistent DSM.

    §10 of the paper lists, as work in progress, "extending the current
    GC design to incorporate a weakly consistent distributed shared
    memory system with full support for transactions".  This module
    builds that layer on the primitives the paper already has:

    - {b isolation} comes from the entry-consistency tokens themselves,
      held in two-phase style: every object read or written inside a
      transaction keeps its token until commit or abort, so no other node
      can observe intermediate states (conflicting acquires fail, and the
      caller aborts and retries);
    - {b atomicity} of aborts comes from an undo log of before-images,
      restored under the still-held write tokens;
    - {b durability} (optional) comes from the RVM substrate (§2.1):
      [commit ~durable] logs the write-set into a recoverable store
      within one RVM transaction;
    - {b the collector needs no changes}: a BGC can run at any node in
      the middle of a transaction — it acquires no token, so it cannot
      block on, or be blocked by, transactional locks.  (The
      strongly-consistent baseline collector deadlocks against open
      transactions; see [test/test_txn.ml].)

    Writes go through the ordinary write barrier, so references created
    inside transactions get their SSPs immediately; an aborted
    transaction's allocations simply become garbage for the next BGC. *)

type t

type status = Active | Committed | Aborted

val status : t -> status

val begin_ : Bmx.Cluster.t -> node:Bmx_util.Ids.Node.t -> t
(** Start a transaction at [node]. *)

exception Conflict of string
(** A token needed by the transaction is held by another transaction. *)

val read : t -> Bmx_util.Addr.t -> int -> Bmx_memory.Value.t
(** Read a field, acquiring (and keeping) a read token for the object.
    Raises [Conflict] if the write token is held elsewhere, [Failure] if
    the transaction is not active. *)

val write : t -> Bmx_util.Addr.t -> int -> Bmx_memory.Value.t -> unit
(** Write a field through the write barrier, acquiring (and keeping) the
    write token and recording the before-image for abort. *)

val alloc :
  t -> bunch:Bmx_util.Ids.Bunch.t -> Bmx_memory.Value.t array -> Bmx_util.Addr.t
(** Allocate inside the transaction.  If the transaction aborts the
    object is left unreferenced and the next collection reclaims it. *)

val current : t -> Bmx_util.Addr.t -> Bmx_util.Addr.t
(** The address under which the transaction currently knows the object
    (tokens may have moved it here; use this for handles across GCs). *)

val commit :
  ?durable:(Bmx_util.Addr.t * Bmx_memory.Heap_obj.image) Bmx_rvm.Rvm.t -> t -> unit
(** Make the transaction's effects visible: release every token.  With
    [durable], the write-set's after-images are first logged into the
    recoverable store within a single RVM transaction. *)

val abort : t -> unit
(** Restore every before-image (under the still-held write tokens), then
    release the tokens. *)

val read_set_size : t -> int
val write_set_size : t -> int
