examples/txn_transfer.ml: Array Bmx Bmx_memory Bmx_rvm Bmx_txn Bmx_util Printf Rng Stats
