(* The scion cleaner (§6): FIFO ordering, idempotence, loss tolerance. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Net = Bmx_netsim.Net
module Value = Bmx_memory.Value
module Gc_state = Bmx_gc.Gc_state
module Scion_cleaner = Bmx_gc.Scion_cleaner
module Directory = Bmx_dsm.Directory

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* A two-node setup with a cross-node inter-bunch SSP: y(B1)@N0 -> x(B2)@N1,
   stub at N0, scion at N1. *)
let cross_node_ssp () =
  let c = Cluster.create ~nodes:2 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:1 in
  let x = Cluster.alloc c ~node:1 ~bunch:b2 [| Value.Data 1 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Ref x |] in
  Cluster.add_root c ~node:0 y;
  ignore (Cluster.drain c);
  (c, b1, b2, x, y)

let test_scion_survives_while_stub_lives () =
  let c, b1, b2, _x, _y = cross_node_ssp () in
  let _ = Cluster.bgc c ~node:0 ~bunch:b1 in
  ignore (Cluster.drain c);
  check_int "scion still there" 1
    (List.length (Gc_state.inter_scions (Cluster.gc c) ~node:1 ~bunch:b2));
  let r = Cluster.bgc c ~node:1 ~bunch:b2 in
  check_int "target alive" 0 r.Bmx_gc.Collect.r_reclaimed

let test_scion_removed_when_stub_gone () =
  let c, b1, b2, _x, y = cross_node_ssp () in
  Cluster.remove_root c ~node:0 y;
  let _ = Cluster.bgc c ~node:0 ~bunch:b1 in
  ignore (Cluster.drain c);
  check_int "scion removed at N1" 0
    (List.length (Gc_state.inter_scions (Cluster.gc c) ~node:1 ~bunch:b2));
  let r = Cluster.bgc c ~node:1 ~bunch:b2 in
  check_int "target reclaimed" 1 r.Bmx_gc.Collect.r_reclaimed

let test_stale_table_ignored () =
  let c, _b1, b2, x, _y = cross_node_ssp () in
  let gc = Cluster.gc c in
  let x_uid = Cluster.uid_at c ~node:1 x in
  (* Deliver a fabricated EMPTY table with a stale sequence number: the
     cleaner must ignore it and keep the scion. *)
  Gc_state.record_table_seq gc ~node:1 ~sender:0 ~bunch:2 ~seq:0;
  ignore x_uid;
  let b1 = 0 in
  let empty =
    {
      Scion_cleaner.tm_sender = 0;
      tm_bunch = b1;
      tm_body =
        Scion_cleaner.Full { fb_inter = []; fb_intra = []; fb_exiting = [] };
    }
  in
  (* First deliver with a high seq so the stream position advances. *)
  let real_stubs = Gc_state.inter_stubs gc ~node:0 ~bunch:b1 in
  let full =
    {
      empty with
      Scion_cleaner.tm_body =
        Scion_cleaner.Full
          { fb_inter = real_stubs; fb_intra = []; fb_exiting = [] };
    }
  in
  Scion_cleaner.receive gc ~at:1 ~seq:10 full;
  check_int "scion kept by fresh full table" 1
    (List.length (Gc_state.inter_scions gc ~node:1 ~bunch:b2));
  (* Now a stale empty table (seq 5 < 10): must be ignored. *)
  Scion_cleaner.receive gc ~at:1 ~seq:5 empty;
  check_int "stale table ignored" 1
    (List.length (Gc_state.inter_scions gc ~node:1 ~bunch:b2));
  check_bool "stale counted" true
    (Stats.get (Cluster.stats c) "gc.cleaner.stale_ignored" > 0);
  (* A duplicate of the fresh table (same seq) is also ignored: idempotent. *)
  Scion_cleaner.receive gc ~at:1 ~seq:10 full;
  check_int "duplicate ignored" 1
    (List.length (Gc_state.inter_scions gc ~node:1 ~bunch:b2))

let test_loss_tolerance_with_resend () =
  (* Drop every stub-table message of the first BGC; the scion survives
     (no unsafety); re-running the BGC resends and the cleaner converges. *)
  let c, b1, b2, _x, y = cross_node_ssp () in
  Cluster.remove_root c ~node:0 y;
  let rng = Rng.make 3 in
  Net.set_fault (Cluster.net c) ~kind:Net.Stub_table ~drop:1.0 ~dup:0.0 ~rng;
  let _ = Cluster.bgc c ~node:0 ~bunch:b1 in
  ignore (Cluster.drain c);
  check_int "scion survives the loss (conservative)" 1
    (List.length (Gc_state.inter_scions (Cluster.gc c) ~node:1 ~bunch:b2));
  (* Transport heals; the next BGC's tables repair everything. *)
  Net.clear_faults (Cluster.net c);
  let _ = Cluster.bgc c ~node:0 ~bunch:b1 in
  ignore (Cluster.drain c);
  check_int "scion removed after resend" 0
    (List.length (Gc_state.inter_scions (Cluster.gc c) ~node:1 ~bunch:b2));
  let r = Cluster.bgc c ~node:1 ~bunch:b2 in
  check_int "garbage finally reclaimed" 1 r.Bmx_gc.Collect.r_reclaimed;
  check_bool "safety throughout" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_duplication_tolerance () =
  let c, b1, b2, _x, _y = cross_node_ssp () in
  let rng = Rng.make 3 in
  Net.set_fault (Cluster.net c) ~kind:Net.Stub_table ~drop:0.0 ~dup:1.0 ~rng;
  let _ = Cluster.bgc c ~node:0 ~bunch:b1 in
  ignore (Cluster.drain c);
  check_int "duplicated tables harmless" 1
    (List.length (Gc_state.inter_scions (Cluster.gc c) ~node:1 ~bunch:b2));
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_entering_reconciliation () =
  (* N1 caches a replica of x owned by N0.  When N1's BGC stops listing
     the exiting ownerPtr, the cleaner at N0 drops the entering entry and
     x can die. *)
  let c = Cluster.create ~nodes:2 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let x_uid = Cluster.uid_at c ~node:0 x in
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  Cluster.add_root c ~node:1 x1;
  (* N1's BGC advertises the exiting ownerPtr; N0 keeps x alive. *)
  let _ = Cluster.bgc c ~node:1 ~bunch:b in
  ignore (Cluster.drain c);
  check_bool "entering entry at N0" true
    (Ids.Node_set.mem 1 (Directory.entering (Protocol.directory (Cluster.proto c) 0) x_uid));
  let r0 = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "x alive at owner" 0 r0.Bmx_gc.Collect.r_reclaimed;
  (* Drop N1's root; its BGC reclaims the replica and stops exiting. *)
  Cluster.remove_root c ~node:1 x1;
  let r1 = Cluster.bgc c ~node:1 ~bunch:b in
  check_int "replica reclaimed at N1" 1 r1.Bmx_gc.Collect.r_reclaimed;
  ignore (Cluster.drain c);
  check_bool "entering entry gone at N0" false
    (Ids.Node_set.mem 1 (Directory.entering (Protocol.directory (Cluster.proto c) 0) x_uid));
  let r0' = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "x reclaimed at owner" 1 r0'.Bmx_gc.Collect.r_reclaimed

let test_destinations () =
  let c, b1, _b2, _x, _y = cross_node_ssp () in
  let gc = Cluster.gc c in
  let old_inter = Gc_state.inter_stubs gc ~node:0 ~bunch:b1 in
  let dests =
    Scion_cleaner.destinations gc ~node:0 ~bunch:b1 ~old_inter ~new_inter:old_inter
      ~old_intra:[] ~new_intra:[] ~exiting:[]
  in
  check_bool "scion holder N1 is a destination" true (List.mem 1 dests);
  check_bool "never includes self" false (List.mem 0 dests)

let () =
  Alcotest.run "scion_cleaner"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "scion survives while stub lives" `Quick
            test_scion_survives_while_stub_lives;
          Alcotest.test_case "scion removed when stub gone" `Quick
            test_scion_removed_when_stub_gone;
          Alcotest.test_case "entering ownerPtr reconciliation" `Quick
            test_entering_reconciliation;
          Alcotest.test_case "destinations" `Quick test_destinations;
        ] );
      ( "robustness (§6.1)",
        [
          Alcotest.test_case "stale and duplicate tables ignored" `Quick
            test_stale_table_ignored;
          Alcotest.test_case "loss tolerated, repaired by resend" `Quick
            test_loss_tolerance_with_resend;
          Alcotest.test_case "duplication harmless" `Quick test_duplication_tolerance;
        ] );
    ]
