type t = { mutable state : int64 }

let make seed = { state = Int64.of_int (seed lxor 0x9e3779b9) }

(* splitmix64: tiny, fast, and good enough for workload generation. *)
let next t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = next t
let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
