(** Chrome-trace-event export of a span list (Perfetto-compatible).

    One trace "process" per node (pid = node id, named via [process_name]
    metadata), one "thread" per {!Span.track} (tid = track index, named
    via [thread_name]).  Finished spans become complete events
    ([ph = "X"], with [ts]/[dur] in virtual µsteps), instants become
    thread-scoped instant events ([ph = "i"]).  Load the output at
    ui.perfetto.dev or chrome://tracing. *)

val to_json : ?extra:Json.t list -> Span.t list -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}].  [extra] events
    (e.g. {!Timeseries.perfetto_counters} counter tracks) append to the
    span events verbatim. *)

val to_string : ?extra:Json.t list -> Span.t list -> string

val write_file : ?extra:Json.t list -> string -> Span.t list -> unit
