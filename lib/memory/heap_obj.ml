open Bmx_util

(* A heap object is now a *handle* into a flat arena (Flatheap): the
   record pins the stable identity (uid, bunch) plus the slot coordinates;
   fields and the version counter live as raw ints in the arena.  The
   generation stamp makes any access through a handle whose slot was
   reclaimed fail loudly (Invalid_argument) instead of aliasing whatever
   object recycled the slot. *)

type t = {
  uid : Ids.Uid.t;
  bunch : Ids.Bunch.t;
  heap : Flatheap.t;
  base : int;
  gen : int;
}

let make ?(version = 0) ?(heap = Flatheap.default) ~uid ~bunch ~fields () =
  let base, gen = Flatheap.alloc heap ~nfields:(Array.length fields) in
  Array.iteri (fun i v -> Flatheap.set_raw heap ~base ~gen i (Value.to_raw v)) fields;
  if version <> 0 then Flatheap.set_version heap ~base ~gen version;
  { uid; bunch; heap; base; gen }

let num_fields t = Flatheap.nfields t.heap ~base:t.base ~gen:t.gen
let version t = Flatheap.version t.heap ~base:t.base ~gen:t.gen
let header_bytes = 2 * Addr.word
let size_bytes t = header_bytes + (num_fields t * Addr.word)

let get t i = Value.of_raw (Flatheap.get_raw t.heap ~base:t.base ~gen:t.gen i)

let set t i v =
  Flatheap.set_raw t.heap ~base:t.base ~gen:t.gen i (Value.to_raw v);
  Flatheap.bump_version t.heap ~base:t.base ~gen:t.gen

let fixup t i v = Flatheap.set_raw t.heap ~base:t.base ~gen:t.gen i (Value.to_raw v)

let get_raw t i = Flatheap.get_raw t.heap ~base:t.base ~gen:t.gen i

let clone ?heap t =
  let dst = match heap with Some h -> h | None -> t.heap in
  let base, gen =
    Flatheap.alloc_copy dst ~src:t.heap ~src_base:t.base ~src_gen:t.gen
  in
  { uid = t.uid; bunch = t.bunch; heap = dst; base; gen }

let overwrite t ~from =
  if t.uid <> from.uid then invalid_arg "Heap_obj.overwrite: uid mismatch";
  Flatheap.blit_fields ~src:from.heap ~src_base:from.base ~src_gen:from.gen
    ~dst:t.heap ~dst_base:t.base ~dst_gen:t.gen

let free t = Flatheap.free t.heap ~base:t.base ~gen:t.gen

(* Allocation-free pointer iteration — the collectors' field scan. *)
let iter_pointers t f =
  let n = num_fields t in
  for i = 0 to n - 1 do
    let r = Flatheap.unsafe_get_raw t.heap ~base:t.base i in
    if Value.raw_is_pointer r then f (Value.raw_addr r)
  done

let iteri_pointers t f =
  let n = num_fields t in
  for i = 0 to n - 1 do
    let r = Flatheap.unsafe_get_raw t.heap ~base:t.base i in
    if Value.raw_is_pointer r then f i (Value.raw_addr r)
  done

let pointers t =
  let acc = ref [] in
  let n = num_fields t in
  for i = n - 1 downto 0 do
    let r = Flatheap.unsafe_get_raw t.heap ~base:t.base i in
    if Value.raw_is_pointer r then acc := Value.raw_addr r :: !acc
  done;
  !acc

let fields_copy t =
  Array.init (num_fields t) (fun i -> get t i)

(* A plain-value snapshot of an object, for anything that must outlive
   the arena slot — above all the RVM disks, whose per-record checksums
   hash the stored value: a handle would hash the shared mutable arena,
   so any later mutator write would read back as phantom corruption. *)
type image = {
  im_uid : Ids.Uid.t;
  im_bunch : Ids.Bunch.t;
  im_version : int;
  im_fields : Value.t array;
}

let to_image t =
  {
    im_uid = t.uid;
    im_bunch = t.bunch;
    im_version = version t;
    im_fields = fields_copy t;
  }

let of_image ?heap im =
  make ~version:im.im_version ?heap ~uid:im.im_uid ~bunch:im.im_bunch
    ~fields:im.im_fields ()

let image_copy im = { im with im_fields = Array.copy im.im_fields }

let image_pointers im =
  Array.fold_right
    (fun v acc ->
      match v with
      | Value.Ref a when not (Addr.is_null a) -> a :: acc
      | _ -> acc)
    im.im_fields []

let mark t = Flatheap.mark t.heap ~base:t.base
let unmark t = Flatheap.unmark t.heap ~base:t.base
let is_marked t = Flatheap.is_marked t.heap ~base:t.base

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@%a{%a}@]" Ids.Uid.pp t.uid Ids.Bunch.pp t.bunch
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Value.pp)
    (Array.to_list (fields_copy t))
