lib/baseline/locking_gc.mli: Bmx_gc Bmx_util
