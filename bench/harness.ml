(* Shared helpers for the experiment harness. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Net = Bmx_netsim.Net

let now_ns () = Monotonic_clock.now ()

let time_ms f =
  let t0 = now_ns () in
  let x = f () in
  let t1 = now_ns () in
  (x, Int64.to_float (Int64.sub t1 t0) /. 1e6)

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let gc_token_traffic c =
  Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
  + Stats.get (Cluster.stats c) "dsm.gc.acquire_write"

let gc_invalidations c = Stats.get (Cluster.stats c) "dsm.gc.invalidations"

let kind_count c kind = Net.sent (Cluster.net c) kind

(* Counter snapshots answer [delta] lookups in O(1): the registry is read
   directly at both ends instead of materialising and linearly searching
   an assoc list of every counter. *)
let snapshot c =
  let h = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace h k v) (Stats.counters (Cluster.stats c));
  h

let delta ~before c name =
  Stats.get (Cluster.stats c) name
  - Option.value ~default:0 (Hashtbl.find_opt before name)

(* A replicated working heap: one bunch of [objects] linked objects owned
   by node 0, with read replicas on [replicas] other nodes. *)
let replicated_bunch ?(objects = 64) ~replicas () =
  let c = Cluster.create ~nodes:(replicas + 1) () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Bmx_workload.Graphgen.linked_list c ~node:0 ~bunch:b ~len:objects in
  Cluster.add_root c ~node:0 head;
  (* Replicate the whole list on each replica node by walking it. *)
  for n = 1 to replicas do
    let rec walk addr =
      let a = Cluster.acquire_read c ~node:n addr in
      Cluster.release c ~node:n a;
      match Cluster.read c ~node:n a 0 with
      | Bmx_memory.Value.Ref next when not (Addr.is_null next) -> walk next
      | _ -> ()
    in
    walk head;
    Cluster.add_root c ~node:n head
  done;
  ignore (Cluster.drain c);
  (c, b, head)

let bool_cell b = if b then "yes" else "no"
