(** Field values stored inside objects.

    An object is a contiguous sequence of 4-byte words (§2.1); each word is
    either an ordinary pointer (an address — "object references are
    therefore ordinary pointers") or raw data.  The reference-map bit for a
    word says which (§8). *)

type t =
  | Ref of Bmx_util.Addr.t  (** a pointer; [Ref Addr.null] is a nil pointer *)
  | Data of int  (** uninterpreted data word *)

val nil : t
(** [Ref Addr.null]. *)

val is_pointer : t -> bool
(** [true] for [Ref a] with non-null [a]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Raw tagged-int encoding}

    The flat arena ({!Flatheap}) stores fields as native ints: data words
    carry a low tag bit of 1, pointer words a tag bit of 0, so
    [to_raw nil = 0] and a zero-filled slot reads back as all-nil.
    Data survives the round trip with its sign ([asr] decode); addresses
    must fit 62 bits (they are small ints throughout). *)

val to_raw : t -> int
val of_raw : int -> t

val raw_nil : int
(** [to_raw nil = 0]. *)

val raw_is_pointer : int -> bool
(** [raw_is_pointer (to_raw v) = is_pointer v] — non-nil pointers only. *)

val raw_addr : int -> Bmx_util.Addr.t
(** Address of a raw pointer word.  Meaningful only when
    [raw_is_pointer] holds (or for nil, where it returns [Addr.null]). *)
