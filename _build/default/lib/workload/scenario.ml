open Bmx_util
module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value

type fig1 = {
  f1_cluster : Cluster.t;
  f1_n1 : Ids.Node.t;
  f1_n2 : Ids.Node.t;
  f1_n3 : Ids.Node.t;
  f1_b1 : Ids.Bunch.t;
  f1_b2 : Ids.Bunch.t;
  f1_o1 : Addr.t;
  f1_o2 : Addr.t;
  f1_o3 : Addr.t;
  f1_o5 : Addr.t;
}

let figure1 ?mode () =
  (* Node 0 stays idle so that node ids match the paper's N1..N3. *)
  let c = Cluster.create ~nodes:4 ?mode () in
  let n1 = 1 and n2 = 2 and n3 = 3 in
  let b1 = Cluster.new_bunch c ~home:n1 in
  let b2 = Cluster.new_bunch c ~home:n3 in
  (* o5 lives in B2, which is mapped only on N3. *)
  let o5 = Cluster.alloc c ~node:n3 ~bunch:b2 [| Value.Data 5 |] in
  Cluster.add_root c ~node:n3 o5;
  (* o3 is created at N2 with the inter-bunch reference o3 -> o5; B2 is
     not mapped at N2, so the barrier sends a scion-message to N3. *)
  let o3 = Cluster.alloc c ~node:n2 ~bunch:b1 [| Value.Ref o5; Value.nil |] in
  (* o2 <-> o3 (intra-bunch, both directions: Figure 2 updates pointers
     inside both o1 and o3 when o2 moves), created at N2. *)
  let o2 = Cluster.alloc c ~node:n2 ~bunch:b1 [| Value.Ref o3 |] in
  Cluster.write c ~node:n2 o3 1 (Value.Ref o2);
  (* o1 -> o2, created at N1. *)
  let o1 = Cluster.alloc c ~node:n1 ~bunch:b1 [| Value.Ref o2 |] in
  Cluster.add_root c ~node:n1 o1;
  (* o3's write token moves from N2 to N1: invariant 3 creates the
     intra-bunch SSP (stub at N1, scion at N2). *)
  let o3 = Cluster.acquire_write c ~node:n1 o3 in
  Cluster.release c ~node:n1 o3;
  (* Both nodes end up caching o1, o2, o3 (the Figure 2 zoom). *)
  let o2 = Cluster.acquire_read c ~node:n1 o2 in
  Cluster.release c ~node:n1 o2;
  (* N2 caches o1 too; its o3 copy stays from before the transfer, now
     inconsistent ("i" in Figure 1). *)
  let o1' = Cluster.acquire_read c ~node:n2 o1 in
  Cluster.release c ~node:n2 o1';
  (* N2's mutator works with o1 (Figure 2 keeps o1 live on both nodes). *)
  Cluster.add_root c ~node:n2 o1';
  ignore (Cluster.drain c);
  {
    f1_cluster = c;
    f1_n1 = n1;
    f1_n2 = n2;
    f1_n3 = n3;
    f1_b1 = b1;
    f1_b2 = b2;
    f1_o1 = o1;
    f1_o2 = o2;
    f1_o3 = o3;
    f1_o5 = o5;
  }

type fig3_case = Case_a | Case_b | Case_c | Case_d

type fig3 = {
  f3_cluster : Cluster.t;
  f3_n1 : Ids.Node.t;
  f3_n2 : Ids.Node.t;
  f3_bunch : Ids.Bunch.t;
  f3_o1 : Addr.t;
  f3_o2 : Addr.t;
  f3_o1_uid : Ids.Uid.t;
  f3_o2_uid : Ids.Uid.t;
}

let figure3 ~case =
  let c = Cluster.create ~nodes:3 () in
  let n1 = 1 and n2 = 2 in
  let b = Cluster.new_bunch c ~home:n1 in
  (* In cases a–c, N1 owns o2; in case d, N2 does. *)
  let o2_creator = match case with Case_d -> n2 | Case_a | Case_b | Case_c -> n1 in
  let o2 = Cluster.alloc c ~node:o2_creator ~bunch:b [| Value.Data 2 |] in
  let o1 = Cluster.alloc c ~node:n1 ~bunch:b [| Value.Ref o2 |] in
  Cluster.add_root c ~node:n1 o1;
  (* Replicate both objects on the other node. *)
  let read_both node =
    let o1' = Cluster.acquire_read c ~node o1 in
    Cluster.release c ~node o1';
    let o2' = Cluster.acquire_read c ~node o2 in
    Cluster.release c ~node o2'
  in
  read_both n2;
  (match case with Case_d -> read_both n1 | Case_a | Case_b | Case_c -> ());
  Cluster.add_root c ~node:n2 o1;
  let o1_uid = Cluster.uid_at c ~node:n1 o1 in
  let o2_uid = Cluster.uid_at c ~node:n1 o2 in
  (* Run the BGC the case calls for — crucially WITHOUT draining the
     background messages, so N2 has not yet heard about new locations;
     only the §5 invariants on the acquire path may inform it. *)
  (match case with
  | Case_a -> ()
  | Case_b | Case_c -> ignore (Cluster.bgc c ~node:n1 ~bunch:b)
  | Case_d -> ignore (Cluster.bgc c ~node:n2 ~bunch:b));
  {
    f3_cluster = c;
    f3_n1 = n1;
    f3_n2 = n2;
    f3_bunch = b;
    f3_o1 = o1;
    f3_o2 = o2;
    f3_o1_uid = o1_uid;
    f3_o2_uid = o2_uid;
  }

type fig4 = {
  f4_cluster : Cluster.t;
  f4_n1 : Ids.Node.t;
  f4_n2 : Ids.Node.t;
  f4_n3 : Ids.Node.t;
  f4_bunch : Ids.Bunch.t;
  f4_target_bunch : Ids.Bunch.t;
  f4_o1 : Addr.t;
  f4_o1_uid : Ids.Uid.t;
  f4_target_uid : Ids.Uid.t;
}

let figure4 () =
  let c = Cluster.create ~nodes:4 () in
  let n1 = 1 and n2 = 2 and n3 = 3 in
  let b = Cluster.new_bunch c ~home:n3 in
  let tb = Cluster.new_bunch c ~home:n3 in
  (* N3 creates o1 with an inter-bunch reference (so N3 holds inter-bunch
     stubs for o1 and the ownership transfer will need an intra SSP). *)
  let target = Cluster.alloc c ~node:n3 ~bunch:tb [| Value.Data 9 |] in
  let o1 = Cluster.alloc c ~node:n3 ~bunch:b [| Value.Ref target |] in
  let target_uid = Cluster.uid_at c ~node:n3 target in
  let o1_uid = Cluster.uid_at c ~node:n3 o1 in
  (* Ownership moves to N2: intra SSP stub@N2 -> scion@N3. *)
  let o1_at_n2 = Cluster.acquire_write c ~node:n2 o1 in
  Cluster.release c ~node:n2 o1_at_n2;
  (* N1 acquires a read copy; the only mutator root lives there. *)
  let o1_at_n1 = Cluster.acquire_read c ~node:n1 o1_at_n2 in
  Cluster.release c ~node:n1 o1_at_n1;
  Cluster.add_root c ~node:n1 o1_at_n1;
  ignore (Cluster.drain c);
  {
    f4_cluster = c;
    f4_n1 = n1;
    f4_n2 = n2;
    f4_n3 = n3;
    f4_bunch = b;
    f4_target_bunch = tb;
    f4_o1 = o1_at_n1;
    f4_o1_uid = o1_uid;
    f4_target_uid = target_uid;
  }
