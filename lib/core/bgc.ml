(* The economical path: a (node, bunch) pair whose dirtiness epoch is
   unchanged since the end of its previous collection would recompute
   the identical live set, reclaim nothing, evacuate nothing (see the
   economical clause in [Collect.run]) and rebroadcast identical tables
   — so the collection is skipped outright.  This is what lets
   [collect_until_quiescent]'s (nodes+1) confirming empty rounds cost
   O(1) each instead of re-tracing every heap: once the cluster stops
   changing, every pair goes clean within a round or two and stays
   clean until real work (a mutation, a received table that deletes
   something, a crash) bumps an epoch. *)

let skipped_report ~node ~bunch =
  {
    Collect.r_node = node;
    r_bunches = [ bunch ];
    r_roots = 0;
    r_live = 0;
    r_copied = 0;
    r_scanned_in_place = 0;
    r_reclaimed = 0;
    r_ref_updates = 0;
    r_new_inter_stubs = 0;
    r_new_intra_stubs = 0;
    r_exiting = 0;
    r_tables_sent = 0;
  }

let run ?(economical = false) t ~node ~bunch =
  if economical && Gc_state.bgc_clean t ~node ~bunch then begin
    Bmx_util.Stats.incr (Gc_state.stats t) "gc.bgc.skipped_clean";
    skipped_report ~node ~bunch
  end
  else begin
    let r = Collect.run ~economical t ~node ~bunches:[ bunch ] ~group_mode:false () in
    Gc_state.note_bgc_epoch t ~node ~bunch;
    Gc_state.sample_node_gauges t ~node;
    r
  end

let run_all_replicas ?economical t ~bunch =
  let proto = Gc_state.proto t in
  List.map
    (fun node -> run ?economical t ~node ~bunch)
    (Bmx_dsm.Protocol.bunch_replica_nodes proto bunch)
