module Rvm = Bmx_rvm.Rvm

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_opt = check (Alcotest.option Alcotest.string)

let make () = Rvm.create ~copy:Fun.id ()

let test_commit_applies () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.set r 8 "b";
  Rvm.commit r;
  check_opt "read a" (Some "a") (Rvm.get r 4);
  check_opt "read b" (Some "b") (Rvm.get r 8);
  check_int "cardinal" 2 (Rvm.cardinal r)

let test_abort_discards () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.abort r;
  check_opt "nothing applied" None (Rvm.get r 4);
  check_int "log untouched" 0 (Rvm.log_length r)

let test_uncommitted_reads_own_writes () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  check_opt "sees own write" (Some "a") (Rvm.get r 4);
  Rvm.delete r 4;
  check_opt "sees own delete" None (Rvm.get r 4);
  Rvm.abort r

let test_crash_loses_volatile_recover_restores () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.commit r;
  Rvm.crash r;
  check_opt "volatile lost" None (Rvm.get r 4);
  ignore (Rvm.recover r);
  check_opt "recovered from log" (Some "a") (Rvm.get r 4)

let test_crash_mid_tx_invisible () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "committed";
  Rvm.commit r;
  Rvm.begin_tx r;
  Rvm.set r 4 "doomed";
  Rvm.set r 8 "also doomed";
  Rvm.crash r;
  ignore (Rvm.recover r);
  check_opt "committed survives" (Some "committed") (Rvm.get r 4);
  check_opt "uncommitted gone" None (Rvm.get r 8)

let test_torn_commit_ignored () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "safe";
  Rvm.commit r;
  Rvm.begin_tx r;
  Rvm.set r 4 "torn";
  (* Crash after the data records reached the log, before the commit
     record: recovery must ignore the tail. *)
  Rvm.crash_mid_commit r;
  ignore (Rvm.recover r);
  check_opt "torn tail ignored" (Some "safe") (Rvm.get r 4)

let test_recover_idempotent () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.delete r 4;
  Rvm.set r 4 "b";
  Rvm.commit r;
  ignore (Rvm.recover r);
  ignore (Rvm.recover r);
  check_opt "stable" (Some "b") (Rvm.get r 4)

let test_checkpoint_truncates () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.commit r;
  check_bool "log non-empty" true (Rvm.log_length r > 0);
  Rvm.checkpoint r;
  check_int "log truncated" 0 (Rvm.log_length r);
  Rvm.crash r;
  ignore (Rvm.recover r);
  check_opt "data survives via checkpoint image" (Some "a") (Rvm.get r 4)

let test_delete_logged () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.commit r;
  Rvm.begin_tx r;
  Rvm.delete r 4;
  Rvm.commit r;
  Rvm.crash r;
  ignore (Rvm.recover r);
  check_opt "delete replayed" None (Rvm.get r 4)

let test_no_nested_tx () =
  let r = make () in
  Rvm.begin_tx r;
  Alcotest.check_raises "nested" (Failure "Rvm.begin_tx: transaction already open")
    (fun () -> Rvm.begin_tx r);
  Rvm.abort r;
  Alcotest.check_raises "set outside tx" (Failure "Rvm: no open transaction")
    (fun () -> Rvm.set r 4 "x")

let test_values_copied () =
  (* Mutating a value after set must not corrupt the log (bytes-through-
     a-file semantics). *)
  let r = Rvm.create ~copy:Bytes.copy () in
  let v = Bytes.of_string "abc" in
  Rvm.begin_tx r;
  Rvm.set r 4 v;
  Bytes.set v 0 'X';
  Rvm.commit r;
  Rvm.crash r;
  ignore (Rvm.recover r);
  check_opt "copied at set time" (Some "abc")
    (Option.map Bytes.to_string (Rvm.get r 4))

(* A GC-flavoured end-to-end: persist a heap image, crash mid-"collection",
   recover the pre-collection state (the O'Toole from/to-space-as-files
   arrangement of §8). *)
let test_heap_image_recovery () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 100 "obj1";
  Rvm.set r 200 "obj2";
  Rvm.commit r;
  (* A "BGC" moves obj1 to 300 inside a transaction, then the node dies
     before committing. *)
  Rvm.begin_tx r;
  Rvm.set r 300 "obj1";
  Rvm.delete r 100;
  Rvm.crash r;
  ignore (Rvm.recover r);
  check_opt "pre-GC state intact" (Some "obj1") (Rvm.get r 100);
  check_opt "to-space write invisible" None (Rvm.get r 300);
  (* Re-run the collection and commit this time. *)
  Rvm.begin_tx r;
  Rvm.set r 300 "obj1";
  Rvm.delete r 100;
  Rvm.commit r;
  Rvm.crash r;
  ignore (Rvm.recover r);
  check_opt "post-GC state durable" (Some "obj1") (Rvm.get r 300);
  check_opt "from-space slot gone" None (Rvm.get r 100)

(* ------------------------------------------- corruption and shadow images *)

(* One committed transaction per address, so losses are attributable. *)
let commit_one r addr v =
  Rvm.begin_tx r;
  Rvm.set r addr v;
  Rvm.commit r

let test_clean_recovery_report () =
  let r = make () in
  commit_one r 4 "a";
  commit_one r 8 "b";
  let rep = Rvm.recover r in
  check_bool "clean" true (Rvm.clean_report rep);
  check_int "scanned all" (Rvm.log_length r) rep.Rvm.r_scanned;
  check_int "nothing dropped" 0 rep.Rvm.r_dropped;
  check_int "nothing lost" 0 (List.length rep.Rvm.r_lost)

let test_flip_bits_truncates_suffix () =
  let r = make () in
  commit_one r 4 "a";
  commit_one r 8 "b";
  commit_one r 12 "c";
  (* Corrupt the data record of the second commit (entries are [data;
     commit] pairs, oldest first): recovery keeps only the first commit
     and reports the latest state of 8 and 12 lost. *)
  Rvm.flip_bits r ~index:2;
  Rvm.crash r;
  let rep = Rvm.recover r in
  check_bool "not clean" false (Rvm.clean_report rep);
  check_bool "corruption detected" true (rep.Rvm.r_corrupt > 0);
  check_int "suffix dropped" 4 rep.Rvm.r_dropped;
  check_bool "8 reported lost" true (List.mem 8 rep.Rvm.r_lost);
  check_bool "12 reported lost" true (List.mem 12 rep.Rvm.r_lost);
  check_opt "prefix survives" (Some "a") (Rvm.get r 4);
  check_opt "corrupt commit gone" None (Rvm.get r 8);
  check_opt "later commit gone too" None (Rvm.get r 12);
  (* The log was physically truncated: a fresh commit then a second
     recovery must not resurrect the condemned suffix. *)
  commit_one r 16 "d";
  let rep2 = Rvm.recover r in
  check_bool "recovery after truncation clean" true (Rvm.clean_report rep2);
  check_opt "new commit durable" (Some "d") (Rvm.get r 16);
  check_opt "dropped data stays dropped" None (Rvm.get r 8)

let test_drop_record_detected_by_gap () =
  let r = make () in
  commit_one r 4 "a";
  commit_one r 8 "b";
  Rvm.drop_record r ~index:2;
  Rvm.crash r;
  let rep = Rvm.recover r in
  check_bool "gap detected" true (rep.Rvm.r_corrupt > 0);
  check_bool "8 named lost" true (List.mem 8 rep.Rvm.r_lost);
  check_opt "prefix survives" (Some "a") (Rvm.get r 4);
  check_opt "torn commit dropped" None (Rvm.get r 8)

let test_truncate_mid_record () =
  let r = make () in
  commit_one r 4 "a";
  commit_one r 8 "b";
  Rvm.truncate_mid_record r;
  Rvm.crash r;
  let rep = Rvm.recover r in
  check_bool "not clean" false (Rvm.clean_report rep);
  check_bool "corruption detected" true (rep.Rvm.r_corrupt > 0);
  (* The commit mark vanished before recovery even ran (scanned = 3
     surviving entries); the mangled data record is the one dropped. *)
  check_int "mangled record dropped" 1 rep.Rvm.r_dropped;
  (* The torn write took the commit mark itself, so on disk the second
     transaction reads as uncommitted — but the superblock's tail anchor
     knows the commit slot was written, so the broken durability promise
     is named, not silently demoted to an uncommitted torn tail. *)
  check_bool "8 named lost" true (List.mem 8 rep.Rvm.r_lost);
  check_opt "torn commit gone" None (Rvm.get r 8);
  check_opt "prefix survives" (Some "a") (Rvm.get r 4)

let test_drop_oldest_record_detected () =
  (* Boundary fault at the log head: the oldest entry vanishes.  The
     survivor suffix is contiguous, so only the head anchor (the
     superblock's expected base slot) can betray the gap — an unanchored
     scan would accept the suffix and report a clean recovery while a
     committed Set is gone. *)
  let r = make () in
  commit_one r 4 "a";
  commit_one r 8 "b";
  Rvm.drop_record r ~index:0;
  Rvm.crash r;
  let rep = Rvm.recover r in
  check_bool "not clean" false (Rvm.clean_report rep);
  check_bool "head gap counted corrupt" true (rep.Rvm.r_corrupt > 0);
  (* Record boundaries past the gap are untrustworthy: the whole log is
     condemned, and the name journal still names both transactions. *)
  check_bool "4 named lost" true (List.mem 4 rep.Rvm.r_lost);
  check_bool "8 named lost" true (List.mem 8 rep.Rvm.r_lost);
  check_opt "4 gone" None (Rvm.get r 4);
  check_opt "8 gone" None (Rvm.get r 8)

let test_drop_newest_commit_reports_loss () =
  (* Boundary fault at the log tail: the newest entry — the commit mark
     — vanishes.  On disk the last transaction now reads as a torn
     uncommitted tail; the tail anchor (durable append counter) knows a
     slot beyond the survivors was written, so the committed data is
     reported lost instead of silently reverting. *)
  let r = make () in
  commit_one r 4 "a";
  commit_one r 8 "b";
  Rvm.drop_record r ~index:(Rvm.log_length r - 1);
  Rvm.crash r;
  let rep = Rvm.recover r in
  check_bool "not clean" false (Rvm.clean_report rep);
  check_bool "tail shortfall counted corrupt" true (rep.Rvm.r_corrupt > 0);
  check_bool "8 named lost" true (List.mem 8 rep.Rvm.r_lost);
  check_opt "prefix survives" (Some "a") (Rvm.get r 4);
  check_opt "committed-but-torn tx gone" None (Rvm.get r 8)

let test_truncate_one_entry_log_detected () =
  (* truncate_mid_record on a 1-entry log empties it entirely: nothing
     is left to scan, so only the slot-count shortfall against the
     superblock can make the report unclean. *)
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.crash_mid_commit r;
  check_int "one torn entry on disk" 1 (Rvm.log_length r);
  Rvm.truncate_mid_record r;
  check_int "log emptied" 0 (Rvm.log_length r);
  let rep = Rvm.recover r in
  check_bool "not clean" false (Rvm.clean_report rep);
  check_bool "missing slot counted corrupt" true (rep.Rvm.r_corrupt > 0);
  (* The destroyed record was never committed: no durability promise
     broken, nothing for the name journal to report. *)
  check_int "nothing committed to lose" 0 (List.length rep.Rvm.r_lost)

let test_truncate_two_entry_log_names_loss () =
  (* Same torn tail, but the destroyed entries carried a committed
     transaction: the name journal must still name its address even
     though one record is gone and the other unverifiable. *)
  let r = make () in
  commit_one r 4 "a";
  Rvm.truncate_mid_record r;
  let rep = Rvm.recover r in
  check_bool "not clean" false (Rvm.clean_report rep);
  check_bool "4 named lost" true (List.mem 4 rep.Rvm.r_lost);
  check_opt "4 gone" None (Rvm.get r 4)

let test_head_anchor_follows_checkpoint () =
  (* After a checkpoint the log restarts at a later slot: the head
     anchor must move with it, both to catch a dropped oldest record in
     the fresh log and to accept the fresh log as clean. *)
  let r = make () in
  commit_one r 4 "a";
  Rvm.checkpoint r;
  commit_one r 8 "b";
  Rvm.drop_record r ~index:0;
  Rvm.crash r;
  let rep = Rvm.recover r in
  check_bool "not clean" false (Rvm.clean_report rep);
  check_bool "8 named lost" true (List.mem 8 rep.Rvm.r_lost);
  check_opt "checkpointed state intact" (Some "a") (Rvm.get r 4);
  check_opt "post-checkpoint commit gone" None (Rvm.get r 8);
  (* Appends after the truncating recovery continue the anchored slot
     sequence: a second recovery is clean. *)
  commit_one r 12 "c";
  let rep2 = Rvm.recover r in
  check_bool "clean after re-anchored append" true (Rvm.clean_report rep2);
  check_opt "new commit durable" (Some "c") (Rvm.get r 12)

let test_corruption_behind_checkpoint_harmless () =
  let r = make () in
  commit_one r 4 "a";
  Rvm.checkpoint r;
  commit_one r 8 "b";
  (* The checkpointed state is in the stable image, not the log: only
     post-checkpoint commits are exposed to log corruption. *)
  Rvm.flip_bits r ~index:0;
  Rvm.crash r;
  let rep = Rvm.recover r in
  check_bool "8 lost" true (List.mem 8 rep.Rvm.r_lost);
  check_opt "checkpointed state intact" (Some "a") (Rvm.get r 4)

let test_crash_mid_checkpoint_atomic () =
  let r = make () in
  commit_one r 4 "a";
  Rvm.checkpoint r;
  commit_one r 8 "b";
  commit_one r 4 "a2";
  let log_before = Rvm.log_length r in
  check_bool "log non-empty before checkpoint" true (log_before > 0);
  (* The interrupted checkpoint discards its shadow: old image + log
     survive, so recovery sees exactly the pre-checkpoint state. *)
  Rvm.crash_mid_checkpoint r;
  check_int "log intact" log_before (Rvm.log_length r);
  let rep = Rvm.recover r in
  check_bool "clean" true (Rvm.clean_report rep);
  check_opt "overwrite replayed" (Some "a2") (Rvm.get r 4);
  check_opt "commit replayed" (Some "b") (Rvm.get r 8);
  (* And a completed checkpoint afterwards works as usual. *)
  Rvm.checkpoint r;
  check_int "log truncated" 0 (Rvm.log_length r);
  ignore (Rvm.recover r);
  check_opt "image holds overwrite" (Some "a2") (Rvm.get r 4)

let test_crash_mid_checkpoint_in_tx_rejected () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Alcotest.check_raises "checkpoint inside tx"
    (Failure "Rvm.crash_mid_checkpoint: transaction open") (fun () ->
      Rvm.crash_mid_checkpoint r)

let test_fault_bounds_checked () =
  let r = make () in
  commit_one r 4 "a";
  let n = Rvm.log_length r in
  Alcotest.check_raises "flip out of bounds"
    (Invalid_argument "Rvm: fault index out of log bounds") (fun () ->
      Rvm.flip_bits r ~index:n);
  Alcotest.check_raises "drop out of bounds"
    (Invalid_argument "Rvm: fault index out of log bounds") (fun () ->
      Rvm.drop_record r ~index:n)

let () =
  Alcotest.run "rvm"
    [
      ( "transactions",
        [
          Alcotest.test_case "commit applies" `Quick test_commit_applies;
          Alcotest.test_case "abort discards" `Quick test_abort_discards;
          Alcotest.test_case "reads own writes" `Quick test_uncommitted_reads_own_writes;
          Alcotest.test_case "no nesting" `Quick test_no_nested_tx;
          Alcotest.test_case "values copied" `Quick test_values_copied;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash/recover" `Quick test_crash_loses_volatile_recover_restores;
          Alcotest.test_case "crash mid-transaction" `Quick test_crash_mid_tx_invisible;
          Alcotest.test_case "torn commit ignored" `Quick test_torn_commit_ignored;
          Alcotest.test_case "recover idempotent" `Quick test_recover_idempotent;
          Alcotest.test_case "checkpoint truncates" `Quick test_checkpoint_truncates;
          Alcotest.test_case "deletes replayed" `Quick test_delete_logged;
          Alcotest.test_case "heap image recovery (E13)" `Quick test_heap_image_recovery;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "clean recovery report" `Quick
            test_clean_recovery_report;
          Alcotest.test_case "flip_bits truncates suffix" `Quick
            test_flip_bits_truncates_suffix;
          Alcotest.test_case "drop_record gap detected" `Quick
            test_drop_record_detected_by_gap;
          Alcotest.test_case "drop oldest record detected" `Quick
            test_drop_oldest_record_detected;
          Alcotest.test_case "drop newest commit reports loss" `Quick
            test_drop_newest_commit_reports_loss;
          Alcotest.test_case "truncate one-entry log detected" `Quick
            test_truncate_one_entry_log_detected;
          Alcotest.test_case "truncate two-entry log names loss" `Quick
            test_truncate_two_entry_log_names_loss;
          Alcotest.test_case "head anchor follows checkpoint" `Quick
            test_head_anchor_follows_checkpoint;
          Alcotest.test_case "truncate mid record" `Quick
            test_truncate_mid_record;
          Alcotest.test_case "corruption behind checkpoint harmless" `Quick
            test_corruption_behind_checkpoint_harmless;
          Alcotest.test_case "crash mid-checkpoint atomic" `Quick
            test_crash_mid_checkpoint_atomic;
          Alcotest.test_case "mid-checkpoint crash needs no tx" `Quick
            test_crash_mid_checkpoint_in_tx_rejected;
          Alcotest.test_case "fault bounds checked" `Quick
            test_fault_bounds_checked;
        ] );
    ]
