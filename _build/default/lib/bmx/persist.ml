open Bmx_util
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Heap_obj = Bmx_memory.Heap_obj
module Rvm = Bmx_rvm.Rvm
module Directory = Bmx_dsm.Directory

type disk = (Addr.t * Heap_obj.t) Rvm.t

let create_disk () = Rvm.create ~copy:(fun (a, o) -> (a, Heap_obj.clone o)) ()

(* Objects of [bunch] reachable from the node's local roots, traced over
   the local replica (the same reachability the BGC computes). *)
let reachable_cells c ~node ~bunch =
  let proto = Cluster.proto c in
  let store = Protocol.store proto node in
  let seen = Ids.Uid_tbl.create 64 in
  let out = ref [] in
  let rec visit addr =
    match Store.resolve store addr with
    | None -> ()
    | Some (a, obj) ->
        if not (Ids.Uid_tbl.mem seen obj.Heap_obj.uid) then begin
          Ids.Uid_tbl.add seen obj.Heap_obj.uid ();
          if Ids.Bunch.equal obj.Heap_obj.bunch bunch then out := (a, obj) :: !out;
          List.iter visit (Heap_obj.pointers obj)
        end
  in
  List.iter visit (Cluster.roots c ~node);
  !out

let checkpoint c ~node ~bunch disk =
  let cells = reachable_cells c ~node ~bunch in
  let keep = Hashtbl.create 64 in
  List.iter (fun (a, _) -> Hashtbl.replace keep a ()) cells;
  let stale =
    Rvm.fold disk ~init:[] ~f:(fun a _ acc ->
        if Hashtbl.mem keep a then acc else a :: acc)
  in
  Rvm.begin_tx disk;
  List.iter (Rvm.delete disk) stale;
  List.iter (fun (a, obj) -> Rvm.set disk a (a, Heap_obj.clone obj)) cells;
  Rvm.commit disk;
  List.length cells

let restore c ~node disk =
  let proto = Cluster.proto c in
  let store = Protocol.store proto node in
  let dir = Protocol.directory proto node in
  Rvm.fold disk ~init:0 ~f:(fun _key (addr, obj) count ->
      let obj = Heap_obj.clone obj in
      let uid = obj.Heap_obj.uid in
      Store.install store addr obj;
      (* If the object still has a live owner elsewhere (only this node's
         memory was lost), come back as an ordinary inconsistent replica;
         orphaned objects get this node as their owner. *)
      (match Protocol.owner_of proto uid with
      | Some owner when not (Ids.Node.equal owner node) ->
          ignore (Directory.ensure dir ~uid ~prob_owner:owner);
          Directory.add_entering
            (Protocol.directory proto owner)
            ~seq:
              (Bmx_netsim.Net.current_seq (Protocol.net proto) ~src:node ~dst:owner)
            ~uid ~from:node
      | Some _ | None ->
          (* Orphan: adopt ownership with a READ state — replicas elsewhere
             may legitimately hold read tokens (MRSW, §2.2). *)
          let r = Directory.ensure dir ~uid ~prob_owner:node in
          r.Directory.is_owner <- true;
          r.Directory.prob_owner <- node;
          if r.Directory.state = Directory.Invalid then
            r.Directory.state <- Directory.Read);
      Protocol.register_copy_location proto ~uid ~addr;
      Cluster.add_root c ~node addr;
      count + 1)
