(** Lightweight recoverable virtual memory (after Satyanarayanan et al.,
    as used by BMX §2.1/§8).

    BMX bases recovery on RVM: once a bunch is mapped, every modification
    to the bunch's address range has an associated log entry and can be
    recovered after a system failure.  Like the original, this is a
    redo-log design with simple flat transactions — no nesting, no
    distribution, no concurrency control (§8).

    The model separates {e volatile} state (lost on [crash]) from {e
    stable} state (the simulated disk: checkpoint image + log).  A
    transaction buffers updates; [commit] appends them to the log followed
    by a commit record, atomically — recovery replays only
    commit-terminated log prefixes, so a crash mid-transaction is
    invisible.  [checkpoint] folds the log into the stable image and
    truncates it, exactly the RVM truncation mechanism.

    The store is polymorphic in the value type; BMX persists heap cells
    keyed by address (the from-space/to-space-as-files arrangement of
    O'Toole et al. that §8 adopts). *)

type 'v t

type report = {
  r_scanned : int;  (** log entries examined by recovery *)
  r_verified : int;  (** entries that checksummed clean in sequence *)
  r_dropped : int;
      (** entries truncated from the log: the unverifiable suffix plus
          any verified-but-uncommitted torn tail *)
  r_corrupt : int;
      (** entries that failed verification (bad checksum or a slot-number
          gap) plus slots the superblock says were written but that are
          missing from the log outright (a record destroyed at either
          log boundary leaves no entry to scan, only this shortfall) *)
  r_lost : Bmx_util.Addr.t list;
      (** addresses whose {e committed} latest state was truncated —
          the data recovery had promised durability for and could not
          deliver; empty unless the log was corrupted.  Named from the
          superblock's per-transaction address journal, so they are
          complete even when the records themselves were destroyed
          rather than merely unverifiable *)
}
(** What {!recover} found on the simulated disk.  A clean recovery (no
    corruption, at worst a torn uncommitted tail) has [r_corrupt = 0]
    and [r_lost = []]. *)

val clean_report : report -> bool
(** No records dropped, none corrupt, nothing lost. *)

val create : copy:('v -> 'v) -> unit -> 'v t
(** [copy] must produce an independent duplicate of a value: values are
    copied on their way to the log and back, like bytes through a file.
    Every log entry carries a per-record checksum and a monotonically
    increasing slot number; {!recover} verifies both.  The handle also
    models a tiny superblock — the append-slot counter, the expected
    head slot, and a per-committed-transaction address journal (names
    only, never values) — written in place and not addressable by the
    fault API, which is what lets recovery detect and {e name} losses
    at the log boundaries. *)

(** {1 Transactions} *)

val begin_tx : 'v t -> unit
(** Raises [Failure] if a transaction is already open. *)

val in_tx : 'v t -> bool

val set : 'v t -> Bmx_util.Addr.t -> 'v -> unit
(** Buffer a write.  Raises [Failure] outside a transaction. *)

val delete : 'v t -> Bmx_util.Addr.t -> unit

val commit : 'v t -> unit
(** Apply the buffered updates to the volatile image and append them,
    with a commit record, to the stable log. *)

val abort : 'v t -> unit
(** Discard the buffered updates. *)

(** {1 Reading} *)

val get : 'v t -> Bmx_util.Addr.t -> 'v option
(** Read from the volatile image (uncommitted buffered writes of the open
    transaction are visible, as with mapped RVM regions). *)

val fold : 'v t -> init:'a -> f:(Bmx_util.Addr.t -> 'v -> 'a -> 'a) -> 'a
val cardinal : 'v t -> int

(** {1 Failure and recovery} *)

val crash : 'v t -> unit
(** Lose all volatile state, including any open transaction.  If a commit
    was in flight, its log tail may be torn (no commit record) and will be
    ignored by recovery. *)

val crash_mid_commit : 'v t -> unit
(** Like [crash], but taken exactly after the data records of the open
    transaction reached the log and before the commit record did — the
    worst-case torn write. *)

val crash_mid_checkpoint : 'v t -> unit
(** Crash in the middle of a {!checkpoint}: the half-written shadow
    image is discarded, the old stable image and the log survive intact
    — the checkpoint simply never happened.  (Checkpointing stages into
    a shadow and installs it atomically; it never mutates the live
    stable image in place, so there is no half-applied state to model.)
    Raises [Failure] inside a transaction. *)

val recover : 'v t -> report
(** Verify the log oldest-first (checksums and slot-number contiguity),
    truncate it to the last verifiable commit-terminated prefix, and
    rebuild the volatile image from the stable checkpoint plus that
    prefix.  The slot sequence is anchored at both boundaries by the
    superblock: the oldest surviving entry must carry the slot recorded
    at the last truncation, and a newest slot short of the append
    counter means tail records were destroyed — so losing a record at
    either end of the log is detected, not just a mid-log gap, and the
    affected transactions' addresses are reported in [r_lost].  The
    first unverifiable entry condemns the whole suffix behind it —
    record boundaries past a corrupt record cannot be trusted.
    Idempotent on a clean log. *)

val last_recovery : 'v t -> report option
(** The report of the most recent {!recover} on this handle, if any.
    Kept for fsck passes: truncated addresses ([r_lost]) can still be
    named after the log entries themselves are gone. *)

val checkpoint : 'v t -> unit
(** RVM truncation: fold the committed log into the stable image and
    clear the log.  Staged through a shadow image so a crash mid-way
    (see {!crash_mid_checkpoint}) loses no committed state.  Raises
    [Failure] inside a transaction. *)

(** {1 Storage fault injection}

    Faults address log entries oldest-first: position 0 is the oldest
    surviving entry, [log_length t - 1] the newest.  All raise
    [Invalid_argument] on an out-of-bounds position. *)

val flip_bits : 'v t -> index:int -> unit
(** Bit rot: corrupt the stored bytes of one log entry so its checksum
    no longer verifies. *)

val drop_record : 'v t -> index:int -> unit
(** Lose one log entry outright; recovery detects the slot-number gap. *)

val truncate_mid_record : 'v t -> unit
(** A torn physical write at the log tail: the newest entry vanishes and
    the partial overwrite mangles the entry before it.  No-op on an
    empty log. *)

val log_length : 'v t -> int
(** Number of records currently in the stable log (data + commit marks). *)
