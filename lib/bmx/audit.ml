open Bmx_util
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Heap_obj = Bmx_memory.Heap_obj

let cached_anywhere t =
  let proto = Cluster.proto t in
  List.fold_left
    (fun acc node ->
      let store = Protocol.store proto node in
      let local = ref acc in
      Store.iter store (fun _ cell ->
          match cell with
          | Store.Object obj -> local := Ids.Uid_set.add obj.Heap_obj.uid !local
          | Store.Forwarder _ -> ());
      !local)
    Ids.Uid_set.empty (Cluster.nodes t)

type stable_cell = { sc_owned : bool; sc_targets : Ids.Uid.t list }

let stable_uids tbl =
  Ids.Uid_tbl.fold (fun u _ acc -> Ids.Uid_set.add u acc) tbl Ids.Uid_set.empty

(* Authoritative graph: uid -> pointer targets (as uids) taken from the
   OWNER's copy of each object — the consistent version a token acquire
   would deliver.  Stale replicas may hold extra pointers, but their
   contents are undefined under entry consistency: a mutator can only
   legally obtain a pointer through a token (getting the owner's version)
   or by already holding it in a root.  Edges from non-owner copies are
   used only as a fallback when no owner copy exists — and the objects
   forced onto that fallback are reported separately rather than
   silently conflated with the authoritative ones: their edge sets are
   best-effort, not something any acquire could still deliver.

   [stable] is the down-nodes' checkpointed state (§8): while an owner is
   crashed, its in-memory copy is gone but its stable image is what
   recovery will reinstate — so an image checkpointed {e as owner}
   outranks any surviving stale replica.  Without it, mid-crash
   reachability would follow pointers the authoritative copy severed long
   ago and "reach" objects the collector rightly reclaimed. *)
let union_edges_report ?stable t =
  let proto = Cluster.proto t in
  let edges : Ids.Uid_set.t ref Ids.Uid_tbl.t = Ids.Uid_tbl.create 256 in
  let stale = ref Ids.Uid_set.empty in
  let add u v =
    match Ids.Uid_tbl.find_opt edges u with
    | Some s -> s := Ids.Uid_set.add v !s
    | None -> Ids.Uid_tbl.add edges u (ref (Ids.Uid_set.singleton v))
  in
  let targets_at node uid =
    let store = Protocol.store proto node in
    match Store.addr_of_uid store uid with
    | None -> None
    | Some a -> (
        match Store.resolve store a with
        | Some (_, obj) ->
            Some
              (List.filter_map (Protocol.uid_of_addr proto) (Heap_obj.pointers obj))
        | None -> None)
  in
  let stable_find uid =
    match stable with
    | None -> None
    | Some tbl -> Ids.Uid_tbl.find_opt tbl uid
  in
  let universe =
    match stable with
    | None -> cached_anywhere t
    | Some tbl -> Ids.Uid_set.union (cached_anywhere t) (stable_uids tbl)
  in
  Ids.Uid_set.iter
    (fun uid ->
      let targets =
        match Protocol.owner_of proto uid with
        | Some owner when targets_at owner uid <> None -> targets_at owner uid
        | Some _ | None -> (
            match stable_find uid with
            | Some { sc_owned = true; sc_targets } -> Some sc_targets
            | Some _ | None -> (
                (* No authoritative copy, volatile or stable: fall back
                   to some replica, and remember that this object's edges
                   are not authoritative. *)
                match Protocol.replica_nodes proto uid with
                | n :: _ ->
                    stale := Ids.Uid_set.add uid !stale;
                    targets_at n uid
                | [] -> (
                    match stable_find uid with
                    | Some { sc_targets; _ } ->
                        stale := Ids.Uid_set.add uid !stale;
                        Some sc_targets
                    | None -> None)))
      in
      match targets with
      | Some ts -> List.iter (add uid) ts
      | None -> ())
    universe;
  (edges, !stale)

let union_edges ?stable t = fst (union_edges_report ?stable t)
let stale_edge_sources t = snd (union_edges_report t)

let root_uids t =
  let proto = Cluster.proto t in
  List.fold_left
    (fun acc node ->
      List.fold_left
        (fun acc addr ->
          match Protocol.uid_of_addr proto addr with
          | Some u -> Ids.Uid_set.add u acc
          | None -> acc)
        acc
        (Cluster.roots t ~node))
    Ids.Uid_set.empty (Cluster.nodes t)

let union_reachable ?stable t =
  let edges = union_edges ?stable t in
  let seen = ref Ids.Uid_set.empty in
  let rec visit u =
    if not (Ids.Uid_set.mem u !seen) then begin
      seen := Ids.Uid_set.add u !seen;
      match Ids.Uid_tbl.find_opt edges u with
      | Some s -> Ids.Uid_set.iter visit !s
      | None -> ()
    end
  in
  Ids.Uid_set.iter visit (root_uids t);
  !seen

(* A uid held on a down node's stable store is not lost: recovery will
   reinstate it (§8). *)
let lost_objects ?stable t =
  let recoverable =
    match stable with
    | None -> cached_anywhere t
    | Some tbl -> Ids.Uid_set.union (cached_anywhere t) (stable_uids tbl)
  in
  Ids.Uid_set.diff (union_reachable ?stable t) recoverable

let garbage_retained t = Ids.Uid_set.diff (cached_anywhere t) (union_reachable t)

let check_safety t =
  let lost = lost_objects t in
  if not (Ids.Uid_set.is_empty lost) then
    Error
      (Printf.sprintf "lost reachable objects: %s"
         (String.concat ", "
            (List.map Ids.Uid.to_string (Ids.Uid_set.elements lost))))
  else begin
    (* Every mutator root must still resolve at its own node. *)
    let proto = Cluster.proto t in
    let bad =
      List.concat_map
        (fun node ->
          let store = Protocol.store proto node in
          List.filter_map
            (fun addr ->
              match Store.resolve store addr with
              | Some _ -> None
              | None ->
                  Some (Printf.sprintf "root %s dangling at N%d" (Addr.to_string addr) node))
            (Cluster.roots t ~node))
        (Cluster.nodes t)
    in
    match bad with [] -> Ok () | msgs -> Error (String.concat "; " msgs)
  end

let check_tokens t =
  let proto = Cluster.proto t in
  let module D = Bmx_dsm.Directory in
  (* uid -> (owners, writers, readers) *)
  let acc : (int * int * int) Ids.Uid_tbl.t = Ids.Uid_tbl.create 256 in
  let violation = ref None in
  let note uid f =
    let o, w, r =
      Option.value ~default:(0, 0, 0) (Ids.Uid_tbl.find_opt acc uid)
    in
    Ids.Uid_tbl.replace acc uid (f (o, w, r))
  in
  List.iter
    (fun node ->
      let dir = Protocol.directory proto node in
      let store = Protocol.store proto node in
      D.iter dir (fun rec_ ->
          let uid = rec_.D.uid in
          if rec_.D.is_owner then note uid (fun (o, w, r) -> (o + 1, w, r));
          (match rec_.D.state with
          | D.Write -> note uid (fun (o, w, r) -> (o, w + 1, r))
          | D.Read -> note uid (fun (o, w, r) -> (o, w, r + 1))
          | D.Invalid -> ());
          if
            rec_.D.state <> D.Invalid
            && Store.addr_of_uid store uid = None
            && !violation = None
          then
            violation :=
              Some
                (Printf.sprintf "N%d holds a %s token for o%d but no copy" node
                   (D.token_state_to_string rec_.D.state)
                   uid)))
    (Cluster.nodes t);
  Ids.Uid_tbl.iter
    (fun uid (owners, writers, readers) ->
      if !violation = None then
        if owners > 1 then
          violation := Some (Printf.sprintf "o%d has %d owners" uid owners)
        else if writers > 1 then
          violation := Some (Printf.sprintf "o%d has %d write tokens" uid writers)
        else if writers = 1 && readers > 0 then
          violation :=
            Some
              (Printf.sprintf "o%d has a write token alongside %d read tokens"
                 uid readers))
    acc;
  match !violation with None -> Ok () | Some m -> Error m

let total_cached_copies t =
  let proto = Cluster.proto t in
  List.fold_left
    (fun acc node -> acc + Store.object_count (Protocol.store proto node))
    0 (Cluster.nodes t)
