test/test_netsim.ml: Alcotest Bmx_netsim Bmx_util List Rng Stats
