lib/memory/registry.mli: Bmx_util
