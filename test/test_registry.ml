(* Sharded segment registry: boundary behaviour of the O(1) routing +
   floor lookup, the crash/recovery surface, and a QCheck property
   comparing the sharded registry against an arithmetic model under
   random alloc / crash / recover sequences.

   The satellite-1 gauge contract is also pinned here: sampling registry
   occupancy must do O(1) work no matter how many ranges were carved
   (Perfcount.obs_sample_work stays flat). *)

open Bmx_util
module Registry = Bmx_memory.Registry
module Segment = Bmx_memory.Segment
module Cluster = Bmx.Cluster

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let region_bytes = 1 lsl 40
let first_lo = Addr.page_size

let bunch_of_entry e = e.Registry.bunch
let lo_of e = e.Registry.range.Addr.Range.lo
let hi_of e = e.Registry.range.Addr.Range.hi

(* ------------------------------------------------------------ boundaries *)

let test_find_boundaries () =
  let r = Registry.create () in
  let range = Registry.alloc_range r ~bunch:0 ~origin:0 ~bytes:4096 () in
  let lo = range.Addr.Range.lo and hi = range.Addr.Range.hi in
  check_int "first carve starts at first_addr" first_lo lo;
  check_bool "find at lo" true (Registry.find r lo <> None);
  check_bool "find mid-range (unaligned)" true (Registry.find r (lo + 13) <> None);
  check_bool "find at hi-1" true (Registry.find r (hi - 1) <> None);
  (* hi is exclusive: with nothing carved after it, the floor lookup must
     not stretch the last range by a byte. *)
  check_bool "find at hi is None" true (Registry.find r hi = None);
  check_bool "find below first carve is None" true
    (Registry.find r (lo - 1) = None);
  check_bool "find at null is None" true (Registry.find r 0 = None);
  (* A second carve is adjacent (the cursor moves to hi), so the old hi
     is now the next range's lo. *)
  let range2 = Registry.alloc_range r ~bunch:0 ~origin:0 ~bytes:64 () in
  check_int "adjacent carve" hi range2.Addr.Range.lo;
  (match Registry.find r hi with
  | Some e -> check_int "hi now resolves to the next range" hi (lo_of e)
  | None -> Alcotest.fail "hi should resolve to the second range");
  check_bool "beyond the cursor is None" true
    (Registry.find r (range2.Addr.Range.hi + 4096) = None)

let test_alignment () =
  let r = Registry.create () in
  (* An unaligned request is aligned up; carves stay word-aligned and
     adjacent. *)
  let a = Registry.alloc_range r ~bunch:1 ~origin:0 ~bytes:4093 () in
  check_int "size aligned up" (Addr.align_up 4093) (Addr.Range.size a);
  let b = Registry.alloc_range r ~bunch:1 ~origin:0 ~bytes:1 () in
  check_int "next carve starts at aligned hi" a.Addr.Range.hi b.Addr.Range.lo;
  check_int "total_bytes sums aligned sizes"
    (Addr.align_up 4093 + Addr.align_up 1)
    (Registry.total_bytes r)

let test_shard_routing () =
  let shards = 4 in
  let r = Registry.create ~shards () in
  check_int "num_shards" shards (Registry.num_shards r);
  for b = 0 to 7 do
    check_int
      (Printf.sprintf "bunch %d routes mod shards" b)
      (b mod shards) (Registry.shard_of_bunch r b)
  done;
  (* Carve one range per shard; each lands in its own region and routes
     back to its shard by address arithmetic. *)
  let ranges =
    List.init shards (fun b -> (b, Registry.alloc_range r ~bunch:b ~origin:0 ()))
  in
  List.iter
    (fun (b, (range : Addr.Range.t)) ->
      let k = b mod shards in
      check_int
        (Printf.sprintf "shard %d region start" k)
        (first_lo + (k * region_bytes))
        range.Addr.Range.lo;
      check_bool "shard_of_addr at lo" true
        (Registry.shard_of_addr r range.Addr.Range.lo = Some k);
      check_bool "shard_of_addr at hi-1" true
        (Registry.shard_of_addr r (range.Addr.Range.hi - 1) = Some k);
      match Registry.find r range.Addr.Range.lo with
      | Some e -> check_int "entry bunch" b (bunch_of_entry e)
      | None -> Alcotest.fail "carved range must be findable")
    ranges;
  (* Shard-boundary lookups: the first byte of shard k's region belongs
     to shard k even when shard k-1's cursor sits just below it, and
     addresses past the last region route nowhere. *)
  check_bool "below first region" true (Registry.shard_of_addr r (first_lo - 1) = None);
  check_bool "first byte of region 1" true
    (Registry.shard_of_addr r (first_lo + region_bytes) = Some 1);
  check_bool "last byte of last region" true
    (Registry.shard_of_addr r (first_lo + (shards * region_bytes) - 1)
    = Some (shards - 1));
  check_bool "past the last region" true
    (Registry.shard_of_addr r (first_lo + (shards * region_bytes)) = None);
  (* A shard-1 address never floor-matches a shard-0 range: the lookup
     is per-shard, so shard 1's empty map answers None even though
     shard 0 has a carve below the address. *)
  let r2 = Registry.create ~shards:2 () in
  ignore (Registry.alloc_range r2 ~bunch:0 ~origin:0 ());
  check_bool "no cross-shard floor bleed" true
    (Registry.find r2 (first_lo + region_bytes + 8) = None)

(* ------------------------------------------------------- crash / recover *)

let test_crash_recover_surface () =
  let r = Registry.create ~shards:2 () in
  let range0 = Registry.alloc_range r ~bunch:0 ~origin:0 () in
  Registry.crash_shard r 0;
  check_bool "shard 0 down" false (Registry.shard_up r 0);
  (* Lookups keep answering out of the read cache; only carving fails,
     and only on the downed shard. *)
  check_bool "find survives the crash" true
    (Registry.find r range0.Addr.Range.lo <> None);
  (match Registry.alloc_range r ~bunch:0 ~origin:0 () with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "carve from a down shard must fail");
  let range1 = Registry.alloc_range r ~bunch:1 ~origin:0 () in
  check_bool "other shard still carves" true (Addr.Range.size range1 > 0);
  Registry.revive_shard r 0;
  let range0' = Registry.alloc_range r ~bunch:0 ~origin:0 () in
  check_int "cursor survived the outage" range0.Addr.Range.hi
    range0'.Addr.Range.lo

let test_restore_entry_idempotent () =
  let r = Registry.create ~shards:2 () in
  let _ = Registry.alloc_range r ~bunch:0 ~origin:0 () in
  let entries = Registry.shard_entries r 0 in
  check_int "one carve journaled" 1 (List.length entries);
  let e = List.hd entries in
  check_bool "replaying a cached entry installs nothing" false
    (Registry.restore_entry r ~shard:0 e);
  let bytes = Registry.total_bytes r in
  check_int "gauge unchanged by idempotent replay" bytes
    (Registry.total_bytes r);
  (* A journal that disagrees with the index is corruption, not a merge:
     replay must refuse. *)
  let bad =
    { e with Registry.range = Addr.Range.make ~lo:(lo_of e) ~size:8 }
  in
  (match Registry.restore_entry r ~shard:0 bad with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "conflicting replay must fail");
  ignore (hi_of e)

(* --------------------------------------------- QCheck: model equivalence *)

(* Arithmetic model of the sharded registry: per-shard cursor plus a
   list of (lo, hi, bunch), regions carved exactly like the real one.
   The property drives both with random alloc / crash / recover and
   demands identical observable behaviour — including refusals. *)
type model_shard = {
  mutable m_next : int;
  m_region_hi : int;
  mutable m_up : bool;
  mutable m_entries : (int * int * int) list; (* lo, hi, bunch; newest first *)
}

type model = { m_shards : model_shard array }

let model_create ~shards =
  {
    m_shards =
      Array.init shards (fun k ->
          let lo = first_lo + (k * region_bytes) in
          {
            m_next = lo;
            m_region_hi = lo + region_bytes;
            m_up = true;
            m_entries = [];
          });
  }

let model_alloc m ~bunch ~bytes =
  let s = m.m_shards.(bunch mod Array.length m.m_shards) in
  if not s.m_up then None
  else begin
    let size = Addr.align_up bytes in
    let lo = s.m_next in
    if lo + size > s.m_region_hi then None
    else begin
      s.m_next <- lo + size;
      s.m_entries <- (lo, lo + size, bunch) :: s.m_entries;
      Some (lo, lo + size)
    end
  end

let model_find m a =
  if a < first_lo then None
  else
    let k = (a - first_lo) / region_bytes in
    if k >= Array.length m.m_shards then None
    else
      List.find_opt (fun (lo, hi, _) -> lo <= a && a < hi)
        m.m_shards.(k).m_entries

type reg_op =
  | Alloc of int * int (* bunch, bytes *)
  | Crash of int
  | Recover of int
  | Replay of int (* replay shard k's newest carve (idempotence) *)

let gen_op shards =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map2
            (fun b bytes -> Alloc (b, bytes))
            (int_range 0 (2 * shards))
            (int_range 1 20000) );
        (1, map (fun k -> Crash k) (int_range 0 (shards - 1)));
        (2, map (fun k -> Recover k) (int_range 0 (shards - 1)));
        (1, map (fun k -> Replay k) (int_range 0 (shards - 1)));
      ])

let arb_program shards =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Alloc (b, n) -> Printf.sprintf "alloc b%d %dB" b n
             | Crash k -> Printf.sprintf "crash s%d" k
             | Recover k -> Printf.sprintf "recover s%d" k
             | Replay k -> Printf.sprintf "replay s%d" k)
           ops))
    QCheck.Gen.(list_size (int_range 20 80) (gen_op shards))

let prop_model_equivalence ops =
  let shards = 3 in
  let r = Registry.create ~shards () in
  let m = model_create ~shards in
  List.iter
    (function
      | Alloc (bunch, bytes) -> (
          let real =
            match Registry.alloc_range r ~bunch ~origin:0 ~bytes () with
            | range -> Some (range.Addr.Range.lo, range.Addr.Range.hi)
            | exception Failure _ -> None
          in
          let expect = model_alloc m ~bunch ~bytes in
          if real <> expect then
            QCheck.Test.fail_reportf
              "alloc b%d %dB: real %s, model %s" bunch bytes
              (match real with
              | Some (lo, hi) -> Printf.sprintf "[%d,%d)" lo hi
              | None -> "refused")
              (match expect with
              | Some (lo, hi) -> Printf.sprintf "[%d,%d)" lo hi
              | None -> "refused"))
      | Crash k ->
          Registry.crash_shard r k;
          m.m_shards.(k).m_up <- false
      | Recover k ->
          (* Service recovery: replay every journaled carve (all cached,
             so every replay is a no-op) and bring the service up. *)
          List.iter
            (fun e ->
              if Registry.restore_entry r ~shard:k e then
                QCheck.Test.fail_reportf
                  "recover s%d: replay installed an entry the cache had" k)
            (Registry.shard_entries r k);
          Registry.revive_shard r k;
          m.m_shards.(k).m_up <- true
      | Replay k -> (
          match Registry.shard_entries r k with
          | [] -> ()
          | e :: _ ->
              if Registry.restore_entry r ~shard:k e then
                QCheck.Test.fail_reportf "replay s%d resurrected an entry" k))
    ops;
  (* Final audit: every model range is found with the right bunch, probe
     addresses around every boundary agree, and the gauges match. *)
  Array.iteri
    (fun k s ->
      List.iter
        (fun (lo, hi, bunch) ->
          (match Registry.find r lo with
          | Some e ->
              if bunch_of_entry e <> bunch || lo_of e <> lo || hi_of e <> hi
              then QCheck.Test.fail_reportf "find(lo=%d) disagrees" lo
          | None -> QCheck.Test.fail_reportf "find(lo=%d) lost a range" lo);
          let probe a =
            let real =
              match Registry.find r a with
              | Some e -> Some (lo_of e, hi_of e, bunch_of_entry e)
              | None -> None
            in
            if real <> model_find m a then
              QCheck.Test.fail_reportf "find(%d) disagrees with model" a
          in
          probe (hi - 1);
          probe hi;
          probe (lo + ((hi - lo) / 2)))
        s.m_entries;
      if Registry.shard_up r k <> s.m_up then
        QCheck.Test.fail_reportf "shard %d up-state diverged" k;
      let model_bytes =
        List.fold_left (fun a (lo, hi, _) -> a + hi - lo) 0 s.m_entries
      in
      if Registry.shard_bytes r k <> model_bytes then
        QCheck.Test.fail_reportf "shard %d bytes gauge diverged" k)
    m.m_shards;
  let total =
    Array.fold_left
      (fun a s -> a + List.fold_left (fun a (lo, hi, _) -> a + hi - lo) 0 s.m_entries)
      0 m.m_shards
  in
  if Registry.total_bytes r <> total then
    QCheck.Test.fail_reportf "total_bytes gauge diverged";
  true

let qcheck_model =
  QCheck.Test.make ~name:"sharded registry ≡ arithmetic model" ~count:200
    (arb_program 3) prop_model_equivalence

(* --------------------------------------- gauge sampling is heap-independent *)

let sample_work_of c =
  let before = Perfcount.counters.Perfcount.obs_sample_work in
  List.iter
    (fun ((name, _), src) ->
      if name = "registry.bytes" then
        match src with
        | Bmx_obs.Metrics.S_gauge_fn f -> ignore (!f ())
        | _ -> Alcotest.fail "registry.bytes should be a callback gauge")
    (Bmx_obs.Metrics.sources (Cluster.metrics c));
  Perfcount.counters.Perfcount.obs_sample_work - before

let test_gauge_sampling_flat () =
  (* Sampling the registry gauge must cost the same whether 4 or 400
     ranges were carved: total_bytes is a maintained counter, not a fold
     over segments. *)
  let small = Cluster.create ~nodes:2 ~shards:2 () in
  let _ = Cluster.new_bunch small ~home:0 in
  let w_small = sample_work_of small in
  let big = Cluster.create ~nodes:2 ~shards:2 () in
  let reg = Bmx_dsm.Protocol.registry (Cluster.proto big) in
  for b = 0 to 19 do
    for _ = 1 to 20 do
      ignore (Registry.alloc_range reg ~bunch:b ~origin:0 ~bytes:256 ())
    done
  done;
  check_int "400 carves on the books" 400
    (List.length
       (List.concat
          (List.init (Registry.num_shards reg) (Registry.shard_entries reg))));
  let w_big = sample_work_of big in
  check_int "sampling work independent of carve count" w_small w_big;
  check_bool "sampling did O(1) work, not zero" true (w_small >= 1)

let () =
  Alcotest.run "registry"
    [
      ( "boundaries",
        [
          Alcotest.test_case "find at lo/hi/unaligned" `Quick
            test_find_boundaries;
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "shard routing and regions" `Quick
            test_shard_routing;
        ] );
      ( "crash-recover",
        [
          Alcotest.test_case "down shard refuses carves only" `Quick
            test_crash_recover_surface;
          Alcotest.test_case "restore_entry idempotence" `Quick
            test_restore_entry_idempotent;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest qcheck_model ]);
      ( "gauges",
        [
          Alcotest.test_case "O(1) occupancy sampling" `Quick
            test_gauge_sampling_flat;
        ] );
    ]
