lib/workload/oo7.mli: Bmx Bmx_util
