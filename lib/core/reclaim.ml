open Bmx_util
module Net = Bmx_netsim.Net
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Segment = Bmx_memory.Segment
module Heap_obj = Bmx_memory.Heap_obj
module Value = Bmx_memory.Value

type report = {
  q_segments_freed : int;
  q_bytes_freed : int;
  q_forwarders_dropped : int;
  q_copy_requests : int;
  q_updates_broadcast : int;
}

let bump t name = Stats.incr (Gc_state.stats t) name

(* Allocate a fresh copy of [fields] for [uid] at [node], guaranteed to
   land outside [range] — the whole point of the protocol is to empty that
   range, so an evacuation must never target it. *)
let alloc_outside t ~node ~bunch ~uid ~version ~fields ~range =
  let proto = Gc_state.proto t in
  let store = Protocol.store proto node in
  let candidate = Store.alloc ~version store ~bunch ~uid ~fields in
  if not (Addr.Range.contains range candidate) then candidate
  else begin
    (* The node's active segment is the very range being reclaimed: retire
       the doomed copy and retarget allocation at a fresh segment. *)
    Store.remove store candidate;
    let seg = Store.fresh_segment store ~bunch () in
    Store.set_active_segment store ~bunch seg;
    Store.alloc ~version store ~bunch ~uid ~fields
  end

(* The owner evacuates its local copy out of the address range the
   requester wants to reuse, and reports where the object now lives. *)
let owner_evacuate t ~owner ~uid ~range =
  let proto = Gc_state.proto t in
  let store = Protocol.store proto owner in
  match Store.addr_of_uid store uid with
  | None -> None
  | Some a ->
      if not (Addr.Range.contains range a) then
        Some { Protocol.lu_uid = uid; old_addr = a; new_addr = a }
      else (
        match Store.resolve store a with
        | None -> None
        | Some (_, obj) ->
            let bunch = obj.Heap_obj.bunch in
            let new_addr =
              alloc_outside t ~node:owner ~bunch ~uid
                ~version:(Heap_obj.version obj)
                ~fields:(Heap_obj.fields_copy obj) ~range
            in
            Store.set_forwarder store ~at:a ~target:new_addr;
            Protocol.register_copy_location proto ~uid ~addr:new_addr;
            bump t "gc.reclaim.owner_copies";
            Some { Protocol.lu_uid = uid; old_addr = a; new_addr })

(* Rewrite every locally held pointer (mutator roots and object fields)
   through the local forwarder chains, so the forwarders in the doomed
   segment are no longer needed on this node. *)
let fix_local_pointers t ~node =
  let proto = Gc_state.proto t in
  let store = Protocol.store proto node in
  Gc_state.set_roots t ~node
    (List.map (Store.current_addr store) (Gc_state.roots t ~node));
  Store.iter store (fun obj_addr cell ->
      match cell with
      | Store.Forwarder _ -> ()
      | Store.Object obj ->
          Heap_obj.iteri_pointers obj (fun i p ->
              let p' = Store.current_addr store p in
              if not (Addr.equal p p') then begin
                Heap_obj.fixup obj i (Value.Ref p');
                Store.note_field_write store ~obj_addr ~index:i (Value.Ref p')
              end))

let run t ~node ~bunch =
  let proto = Gc_state.proto t in
  let net = Protocol.net proto in
  let store = Protocol.store proto node in
  let replicas =
    List.filter
      (fun n -> not (Ids.Node.equal n node))
      (Protocol.bunch_replica_nodes proto bunch)
  in
  (* §4.5 reuse waits for replies from every replica (and from each
     object's owner).  A peer that is {e down} cannot object — its
     volatile copies and tokens died with it — but a peer that is alive
     on the far side of a network cut still holds live state and cannot
     answer; evacuating or adopting ownership without it risks split
     brain.  Refuse up front, before any evacuation, so the caller can
     simply retry once the partition heals. *)
  let involved_owners =
    List.concat_map
      (fun seg ->
        if seg.Segment.role <> Segment.From_space then []
        else
          List.filter_map
            (fun (_, cell) ->
              match cell with
              | Store.Forwarder _ -> None
              | Store.Object obj -> Protocol.owner_of proto obj.Heap_obj.uid)
            (Store.cells_in_range store seg.Segment.range))
      (Store.segments_of_bunch store bunch)
  in
  let cut_off n =
    (not (Ids.Node.equal n node))
    && (not (Net.is_down net n))
    && not (Net.reachable net node n)
  in
  (match List.find_opt cut_off (replicas @ involved_owners) with
  | Some peer ->
      bump t "gc.reclaim.deferred_partition";
      failwith
        (Format.asprintf
           "Reclaim.run: peer %a unreachable (partition); from-space reuse \
            deferred"
           Ids.Node.pp peer)
  | None -> ());
  let segments_freed = ref 0
  and bytes_freed = ref 0
  and forwarders_dropped = ref 0
  and copy_requests = ref 0
  and updates_broadcast = ref 0 in
  List.iter
    (fun seg ->
      if seg.Segment.role = Segment.From_space then begin
        let range = seg.Segment.range in
        let cells = Store.cells_in_range store range in
        (* A live copy whose recorded owner can no longer help (the
           owner's own replica died first) must not go down with the
           segment: this node adopts ownership and evacuates it itself. *)
        let evacuate_locally uid (obj : Heap_obj.t) addr =
          let new_addr =
            alloc_outside t ~node ~bunch ~uid
              ~version:(Heap_obj.version obj)
              ~fields:(Heap_obj.fields_copy obj) ~range
          in
          Store.set_forwarder store ~at:addr ~target:new_addr;
          Protocol.register_copy_location proto ~uid ~addr:new_addr
        in
        (* Ask owners to pull their live objects out of the segment; apply
           the replies locally so our own copies leave the range too. *)
        List.iter
          (fun (addr, cell) ->
            match cell with
            | Store.Forwarder _ -> ()
            | Store.Object obj -> (
                let uid = obj.Heap_obj.uid in
                match Protocol.owner_of proto uid with
                | Some owner when Ids.Node.equal owner node ->
                    (* Locally owned stragglers (allocated since the last
                       BGC): evacuate directly. *)
                    evacuate_locally uid obj addr
                | Some owner -> (
                    Net.record_rpc (Protocol.net proto) ~src:node ~dst:owner
                      ~kind:Net.Reclaim_request ();
                    incr copy_requests;
                    match owner_evacuate t ~owner ~uid ~range with
                    | Some update ->
                        Net.record_rpc (Protocol.net proto) ~src:owner ~dst:node
                          ~kind:Net.Reclaim_reply ~bytes:24 ();
                        (* Relocate the local replica to the owner's
                           current address — also when the owner did not
                           need to move (its copy was already outside the
                           range, but ours is inside and about to go). *)
                        (match Store.cell store addr with
                        | Some (Store.Object local)
                          when not (Addr.equal addr update.Protocol.new_addr) ->
                            Store.install store update.Protocol.new_addr local;
                            Store.set_forwarder store ~at:addr
                              ~target:update.Protocol.new_addr
                        | Some _ | None -> ());
                        Protocol.apply_location_updates proto ~node [ update ]
                    | None ->
                        Net.record_rpc (Protocol.net proto) ~src:owner ~dst:node
                          ~kind:Net.Reclaim_reply ();
                        bump t "gc.reclaim.ownership_adopted";
                        Protocol.adopt_ownership proto ~node ~uid;
                        evacuate_locally uid obj addr)
                | None ->
                    bump t "gc.reclaim.ownership_adopted";
                    Protocol.adopt_ownership proto ~node ~uid;
                    evacuate_locally uid obj addr))
          cells;
        (* Collect the address changes the segment's forwarders record. *)
        let updates =
          List.filter_map
            (fun (addr, cell) ->
              match cell with
              | Store.Forwarder _ ->
                  let cur = Store.current_addr store addr in
                  (match Protocol.uid_of_addr proto cur with
                  | Some uid when not (Addr.equal cur addr) ->
                      Some { Protocol.lu_uid = uid; old_addr = addr; new_addr = cur }
                  | Some _ | None -> None)
              | Store.Object _ -> None)
            (Store.cells_in_range store range)
        in
        (* §4.5 is explicit that reuse waits for acknowledgements: "Once
           the local node receives the replies to the above messages, the
           from-space segment can be fully reused or freed."  So this is
           a request/reply exchange, not fire-and-forget — otherwise a
           token grant racing with the reuse could hand out an address
           whose forwarder no longer exists anywhere. *)
        if updates <> [] then
          List.iter
            (fun dst ->
              Net.record_rpc (Protocol.net proto) ~src:node ~dst
                ~kind:Net.Addr_update
                ~bytes:(24 * List.length updates)
                ();
              Protocol.apply_location_updates proto ~node:dst updates;
              Net.record_rpc (Protocol.net proto) ~src:dst ~dst:node
                ~kind:Net.Reclaim_reply ();
              incr updates_broadcast)
            replicas;
        (* Everything left in the range is a forwarder or dead: fix local
           pointers, then drop the segment wholesale. *)
        fix_local_pointers t ~node;
        List.iter
          (fun (addr, cell) ->
            (match cell with
            | Store.Forwarder _ -> incr forwarders_dropped
            | Store.Object _ -> ());
            Store.remove store addr)
          (Store.cells_in_range store range);
        Segment.reset seg;
        (* The range is retired, never reallocated: numeric address
           recycling would let addresses still present in in-flight
           metadata alias fresh objects.  The 63-bit space is
           inexhaustible in simulation; what §4.5 reclaims — the
           segment's memory — is returned (the maps and cells are gone),
           and accounting (E18) measures live footprint as non-Free
           segment bytes. *)
        Segment.seal seg;
        incr segments_freed;
        bytes_freed := !bytes_freed + Addr.Range.size range;
        bump t "gc.reclaim.segments_freed"
      end)
    (Store.segments_of_bunch store bunch);
  {
    q_segments_freed = !segments_freed;
    q_bytes_freed = !bytes_freed;
    q_forwarders_dropped = !forwarders_dropped;
    q_copy_requests = !copy_requests;
    q_updates_broadcast = !updates_broadcast;
  }
