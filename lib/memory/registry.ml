open Bmx_util

type entry = { range : Addr.Range.t; bunch : Ids.Bunch.t; origin : Ids.Node.t }

module Addr_map = Map.Make (struct
  type t = Addr.t

  let compare = Addr.compare
end)

type t = {
  mutable next : Addr.t;
  mutable entries : entry list; (* newest first *)
  mutable by_lo : entry Addr_map.t;
      (* keyed by range.lo — ranges are carved sequentially and never
         overlap, so the entry containing an address (if any) is the one
         with the greatest lo <= address.  [find] is a floor lookup,
         O(log segments); the old list scan was O(segments) and sat
         under every root scan, trace step and field-write map note,
         which made whole-cluster collections superlinear in heap size
         as evacuations appended segments round after round. *)
  by_bunch : entry list ref Ids.Bunch_tbl.t;
}

let create ?(first_addr = Addr.page_size) () =
  {
    next = Addr.align_up first_addr;
    entries = [];
    by_lo = Addr_map.empty;
    by_bunch = Ids.Bunch_tbl.create 16;
  }

let alloc_range t ~bunch ~origin ?(bytes = Segment.default_bytes) () =
  let range = Addr.Range.make ~lo:t.next ~size:(Addr.align_up bytes) in
  t.next <- range.Addr.Range.hi;
  let e = { range; bunch; origin } in
  t.entries <- e :: t.entries;
  t.by_lo <- Addr_map.add range.Addr.Range.lo e t.by_lo;
  (match Ids.Bunch_tbl.find_opt t.by_bunch bunch with
  | Some r -> r := e :: !r
  | None -> Ids.Bunch_tbl.add t.by_bunch bunch (ref [ e ]));
  range

let find t a =
  match Addr_map.find_last_opt (fun lo -> Addr.compare lo a <= 0) t.by_lo with
  | Some (_, e) when Addr.Range.contains e.range a -> Some e
  | Some _ | None -> None

let bunch_of_addr t a = Option.map (fun e -> e.bunch) (find t a)

let entries_of_bunch t bunch =
  match Ids.Bunch_tbl.find_opt t.by_bunch bunch with
  | Some r -> List.rev !r
  | None -> []

let total_bytes t =
  List.fold_left (fun acc e -> acc + Addr.Range.size e.range) 0 t.entries
