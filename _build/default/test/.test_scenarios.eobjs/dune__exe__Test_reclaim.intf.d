test/test_reclaim.mli:
