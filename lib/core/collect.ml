open Bmx_util
module Protocol = Bmx_dsm.Protocol
module Directory = Bmx_dsm.Directory
module Store = Bmx_memory.Store
module Segment = Bmx_memory.Segment
module Registry = Bmx_memory.Registry
module Heap_obj = Bmx_memory.Heap_obj
module Value = Bmx_memory.Value

type report = {
  r_node : Ids.Node.t;
  r_bunches : Ids.Bunch.t list;
  r_roots : int;
  r_live : int;
  r_copied : int;
  r_scanned_in_place : int;
  r_reclaimed : int;
  r_ref_updates : int;
  r_new_inter_stubs : int;
  r_new_intra_stubs : int;
  r_exiting : int;
  r_tables_sent : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<h>gc@%a[%a]: roots=%d live=%d copied=%d scanned=%d reclaimed=%d \
     updates=%d stubs=%d+%d exiting=%d msgs=%d@]"
    Ids.Node.pp r.r_node
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Ids.Bunch.pp)
    r.r_bunches r.r_roots r.r_live r.r_copied r.r_scanned_in_place r.r_reclaimed
    r.r_ref_updates r.r_new_inter_stubs r.r_new_intra_stubs r.r_exiting
    r.r_tables_sent

(* An inter-bunch (or cross-replica) edge discovered while scanning:
   [src_uid] (in [src_bunch]) references [target_uid]. *)
type edge = {
  e_src_bunch : Ids.Bunch.t;
  e_src_uid : Ids.Uid.t;
  e_target_uid : Ids.Uid.t;
  e_target_owner_hint : (Ids.Bunch.t * Ids.Node.t) option;
      (* target's bunch and owner, for conservative exiting entries when
         the target has no local copy *)
}

let bump ?by t name = Stats.incr ?by (Gc_state.stats t) name

(* ------------------------------------------------------------------ *)
(* Tracing.                                                            *)

(* Compute the set of live objects local to [node] within [bunches],
   starting from the given root addresses.  Scanning follows pointer
   fields of the local — possibly inconsistent — copies only; edges
   leaving the collected set are returned for stub-table reconstruction.
   [extra_root_uids] are roots known by identity only (scions protecting
   objects with no local copy): they produce conservative edges. *)
let trace t ~node ~in_set ~root_addrs ~root_uids =
  let proto = Gc_state.proto t in
  let store = Protocol.store proto node in
  let registry = Protocol.registry proto in
  let live : Addr.t Ids.Uid_tbl.t = Ids.Uid_tbl.create 256 in
  let edges = ref [] in
  let pending = Queue.create () in
  let add_edge ~src_bunch ~src_uid ~target_uid ~hint =
    edges :=
      {
        e_src_bunch = src_bunch;
        e_src_uid = src_uid;
        e_target_uid = target_uid;
        e_target_owner_hint = hint;
      }
      :: !edges
  in
  let mark addr =
    match Store.resolve store addr with
    | None -> false
    | Some (a, obj) ->
        if
          in_set obj.Heap_obj.bunch
          && not (Ids.Uid_tbl.mem live obj.Heap_obj.uid)
        then begin
          Ids.Uid_tbl.add live obj.Heap_obj.uid a;
          Queue.add (a, obj) pending;
          true
        end
        else false
  in
  List.iter (fun a -> ignore (mark a)) root_addrs;
  (* Roots known only by identity: protect the remote copy through a
     conservative exiting entry if there is no local copy to trace. *)
  List.iter
    (fun uid ->
      match Store.addr_of_uid store uid with
      | Some a -> ignore (mark a)
      | None -> ())
    root_uids;
  while not (Queue.is_empty pending) do
    let a, obj = Queue.take pending in
    ignore a;
    Perfcount.(counters.gc_objects_touched <- counters.gc_objects_touched + 1);
    Heap_obj.iter_pointers obj
      (fun target ->
        match Store.resolve store target with
        | Some (_, tobj) ->
            if in_set tobj.Heap_obj.bunch then begin
              ignore (mark target);
              (* Cross-bunch references between bunches collected together
                 (group mode) keep their SSPs: §7 excludes them from the
                 roots, not from the regenerated stub tables. *)
              if not (Ids.Bunch.equal tobj.Heap_obj.bunch obj.Heap_obj.bunch)
              then
                add_edge ~src_bunch:obj.Heap_obj.bunch ~src_uid:obj.Heap_obj.uid
                  ~target_uid:tobj.Heap_obj.uid ~hint:None
            end
            else
              add_edge ~src_bunch:obj.Heap_obj.bunch ~src_uid:obj.Heap_obj.uid
                ~target_uid:tobj.Heap_obj.uid ~hint:None
        | None -> (
            (* The address does not resolve locally.  Identify the target
               through the address oracle; if we in fact cache it under a
               newer address (a stale pointer arrived after its forwarder
               was retired), trace the local copy; otherwise record a
               conservative edge so the remote copy stays protected (see
               DESIGN.md par. 5). *)
            match Protocol.uid_of_addr proto target with
            | None -> ()
            | Some tuid when Store.addr_of_uid store tuid <> None -> (
                let local = Option.get (Store.addr_of_uid store tuid) in
                bump t "gc.trace.stale_pointer_recoveries";
                ignore (mark local);
                match Store.resolve store local with
                | Some (_, tobj)
                  when (not (in_set tobj.Heap_obj.bunch))
                       || not (Ids.Bunch.equal tobj.Heap_obj.bunch obj.Heap_obj.bunch)
                  ->
                    add_edge ~src_bunch:obj.Heap_obj.bunch
                      ~src_uid:obj.Heap_obj.uid ~target_uid:tuid ~hint:None
                | Some _ | None -> ())
            | Some tuid ->
                let hint =
                  match Registry.bunch_of_addr registry target with
                  | Some tb when in_set tb -> (
                      match Protocol.owner_of proto tuid with
                      | Some owner -> Some (tb, owner)
                      | None -> None)
                  | Some _ | None -> None
                in
                if hint <> None then bump t "gc.trace.remote_intra_refs";
                add_edge ~src_bunch:obj.Heap_obj.bunch ~src_uid:obj.Heap_obj.uid
                  ~target_uid:tuid ~hint))
  done;
  (live, !edges)

(* ------------------------------------------------------------------ *)
(* Root computation (§4.1).                                            *)

(* Both §4.1 root sets in one pass: the full one and the one without
   intra-bunch scions (the §6.2 exiting-ownerPtr trace).  They share
   every component except the intra-scion contribution, so computing
   them together halves the per-collection root work — which is the
   dominant non-trace cost at large heaps. *)
let collect_roots t ~node ~in_set ~group_mode =
  let proto = Gc_state.proto t in
  let store = Protocol.store proto node in
  let registry = Protocol.registry proto in
  let dir = Protocol.directory proto node in
  let root_addrs = ref [] and root_uids = ref Ids.Uid_set.empty in
  let add_addr a = root_addrs := a :: !root_addrs in
  let add_uid u = root_uids := Ids.Uid_set.add u !root_uids in
  (* Mutator stacks. *)
  List.iter
    (fun a ->
      match Registry.bunch_of_addr registry a with
      | Some b when in_set b -> add_addr a
      | Some _ | None -> ())
    (Gc_state.roots t ~node);
  let bunches =
    Ids.Bunch_set.union
      (Ids.Bunch_set.of_list
         (List.filter in_set (Gc_state.bunches_with_tables t ~node)))
      (Ids.Bunch_set.of_list (List.filter in_set (Store.mapped_bunches store)))
    |> Ids.Bunch_set.elements
  in
  (* Inter-bunch scions protecting objects of the collected bunches.  In
     group mode, scions whose stub lives inside the group at this very
     node are internal edges, not roots (§7). *)
  List.iter
    (fun b ->
      List.iter
        (fun (s : Ssp.inter_scion) ->
          let internal =
            group_mode
            && in_set s.Ssp.xs_src_bunch
            && Ids.Node.equal s.Ssp.xs_src_node node
          in
          if not internal then add_uid s.Ssp.xs_target_uid)
        (Gc_state.inter_scions t ~node ~bunch:b))
    bunches;
  (* Intra-bunch scions — excluded from the second, exiting-ownerPtr
     root set of §6.2. *)
  let uids_no_intra = !root_uids in
  List.iter
    (fun b ->
      List.iter
        (fun (s : Ssp.intra_scion) -> add_uid s.Ssp.xn_uid)
        (Gc_state.intra_scions t ~node ~bunch:b))
    bunches;
  (* Entering ownerPtrs: remote replicas still reference these locally
     owned objects. *)
  List.iter
    (fun uid ->
      match Store.addr_of_uid store uid with
      | Some a -> (
          match Registry.bunch_of_addr registry a with
          | Some b when in_set b -> add_addr a
          | Some _ | None -> ())
      | None -> ())
    (Directory.entering_uids dir);
  (* Entering ownerPtrs contribute addresses only, so [uids_no_intra] —
     snapshotted before the intra-scion block — is the complete §6.2
     uid root set. *)
  (!root_addrs, Ids.Uid_set.elements !root_uids, Ids.Uid_set.elements uids_no_intra)

(* ------------------------------------------------------------------ *)
(* The collection itself.                                              *)

(* Per-phase wall-clock accounting (trace / flip / copy / scan /
   cleaner-reconcile): every boundary adds to the matching
   Perfcount.gc_ns_* counter; run emits the totals as per-node
   gc.phase.<name> histograms (µs) and, when the event log is on, as
   Gc_phase trace events (Perfetto slices).  This replaces the old
   BMX_GC_PHASE_TIMING stderr hack — see HACKING.md "GC phase
   profiling" for the e20-diag recipe. *)
type phase = P_trace | P_flip | P_copy | P_scan | P_reconcile

let phase_name = function
  | P_trace -> "trace"
  | P_flip -> "flip"
  | P_copy -> "copy"
  | P_scan -> "scan"
  | P_reconcile -> "cleaner-reconcile"

let charge_phase_ns phase ns =
  Perfcount.(
    match phase with
    | P_trace -> counters.gc_ns_trace <- counters.gc_ns_trace + ns
    | P_flip -> counters.gc_ns_flip <- counters.gc_ns_flip + ns
    | P_copy -> counters.gc_ns_copy <- counters.gc_ns_copy + ns
    | P_scan -> counters.gc_ns_scan <- counters.gc_ns_scan + ns
    | P_reconcile -> counters.gc_ns_reconcile <- counters.gc_ns_reconcile + ns)

let all_phases = [ P_trace; P_flip; P_copy; P_scan; P_reconcile ]

let run ?(economical = false) t ~node ~bunches ~group_mode ?(copy = true) () =
  let pt_last = ref (Sys.time ()) in
  let phase_s = [| 0.; 0.; 0.; 0.; 0. |] in
  let phase_idx = function
    | P_trace -> 0
    | P_flip -> 1
    | P_copy -> 2
    | P_scan -> 3
    | P_reconcile -> 4
  in
  let pt phase =
    let now = Sys.time () in
    let i = phase_idx phase in
    phase_s.(i) <- phase_s.(i) +. (now -. !pt_last);
    pt_last := now
  in
  let proto = Gc_state.proto t in
  let store = Protocol.store proto node in
  let dir = Protocol.directory proto node in
  let set = Ids.Bunch_set.of_list bunches in
  let in_set b = Ids.Bunch_set.mem b set in
  bump t (if group_mode then "gc.ggc.runs" else "gc.bgc.runs");
  let evlog = Protocol.evlog proto in
  if Trace_event.enabled evlog then
    Trace_event.record evlog
      (Trace_event.Gc_begin { node; group = group_mode; bunches });

  (* Roots and the full trace. *)
  let root_addrs, root_uids, root_uids_no_intra =
    collect_roots t ~node ~in_set ~group_mode
  in
  pt P_trace;
  let live, edges = trace t ~node ~in_set ~root_addrs ~root_uids in
  pt P_trace;

  (* Second trace without the intra-bunch scions: objects reachable only
     through an intra-bunch scion must not contribute exiting ownerPtrs,
     or the cross-replica cycle of §6.2 would never be reclaimed. *)
  let live_no_intra, _ =
    trace t ~node ~in_set ~root_addrs ~root_uids:root_uids_no_intra
  in
  pt P_trace;

  (* Economical mode: evacuation exists to reclaim the from-space, so
     when the trace proves there is nothing to reclaim — every local
     cell of the collected bunches is live — relocating the survivors
     would only manufacture forwarders and location-update traffic that
     keeps the whole cluster's dirtiness epochs churning.  Skip the flip
     and leave the spaces alone; the moment garbage appears the next
     collection evacuates as usual. *)
  let local_cells =
    List.fold_left (fun acc b -> acc + Store.bunch_object_count store b) 0 bunches
  in
  let do_copy =
    copy && ((not economical) || local_cells > Ids.Uid_tbl.length live)
  in

  (* Flip: allocation spaces of the collected bunches become from-space.
     The to-space segments are created lazily at the first copy; their
     addresses come fresh from the registry, so concurrent BGCs on other
     replicas can never collide (§4.2).  A non-copying (mark-and-sweep)
     collection leaves the spaces alone. *)
  if do_copy then
    List.iter
      (fun b ->
        List.iter
          (fun seg ->
            match seg.Segment.role with
            | Segment.Active | Segment.To_space -> Segment.set_role seg Segment.From_space
            | Segment.From_space | Segment.Free -> ())
          (Store.segments_of_bunch store b))
      bunches;
  pt P_flip;

  (* Copy phase: evacuate locally-owned live objects; merely note the
     others.  The iteration order is by uid for determinism. *)
  let to_spaces : Segment.t Ids.Bunch_tbl.t = Ids.Bunch_tbl.create 4 in
  let to_space bunch =
    match Ids.Bunch_tbl.find_opt to_spaces bunch with
    | Some seg -> seg
    | None ->
        let seg = Store.fresh_segment store ~bunch () in
        Segment.set_role seg Segment.To_space;
        Ids.Bunch_tbl.add to_spaces bunch seg;
        seg
  in
  let copied = ref 0 and scanned_in_place = ref 0 in
  (* Deterministic copy order without rebuilding sorted lists: dump the
     live index into an array and sort in place by uid. *)
  let live_arr = Array.make (Ids.Uid_tbl.length live) (0, Addr.null) in
  let n_live = ref 0 in
  Ids.Uid_tbl.iter
    (fun uid a ->
      live_arr.(!n_live) <- (uid, a);
      incr n_live)
    live;
  Array.sort (fun (a, _) (b, _) -> Ids.Uid.compare a b) live_arr;
  Array.iter
    (fun (uid, addr) ->
      let obj =
        match Store.resolve store addr with
        | Some (_, o) -> o
        | None -> assert false
      in
      let owned =
        match Directory.find dir uid with
        | Some r -> r.Directory.is_owner
        | None -> false
      in
      let in_from_space =
        match Store.segment_at store addr with
        | Some seg -> seg.Segment.role = Segment.From_space
        | None -> false
      in
      if do_copy && owned && in_from_space then begin
        let bunch = obj.Heap_obj.bunch in
        let seg = to_space bunch in
        let new_addr =
          match Store.alloc_clone store ~seg ~of_:obj with
          | Some a -> a
          | None ->
              (* To-space overflow: grow the bunch with another segment. *)
              let seg' = Store.fresh_segment store ~bunch () in
              Segment.set_role seg' Segment.To_space;
              Ids.Bunch_tbl.replace to_spaces bunch seg';
              (match Store.alloc_clone store ~seg:seg' ~of_:obj with
              | Some a -> a
              | None -> failwith "Collect: object larger than a segment")
        in
        Store.set_forwarder store ~at:addr ~target:new_addr;
        Protocol.register_copy_location proto ~uid ~addr:new_addr;
        Ids.Uid_tbl.replace live uid new_addr;
        incr copied;
        bump t "gc.objects_copied"
      end
      else begin
        incr scanned_in_place;
        if not owned then bump t "gc.objects_scanned_in_place"
      end)
    live_arr;
  pt P_copy;

  (* Reference updating (§4.4): rewrite pointer fields of every live local
     copy through the local forwarder chains — strictly local, no token. *)
  Gc_state.set_roots t ~node
    (List.map (Store.current_addr store) (Gc_state.roots t ~node));
  let ref_updates = ref 0 in
  Ids.Uid_tbl.iter
    (fun _uid addr ->
      match Store.resolve store addr with
      | None -> ()
      | Some (a, obj) ->
          Perfcount.(counters.gc_objects_touched <- counters.gc_objects_touched + 1);
          Heap_obj.iteri_pointers obj (fun i p ->
              let p' = Store.current_addr store p in
              if not (Addr.equal p p') then begin
                Heap_obj.fixup obj i (Value.Ref p');
                Store.note_field_write store ~obj_addr:a ~index:i (Value.Ref p');
                incr ref_updates;
                bump t "gc.ref_updates"
              end))
    live;
  pt P_scan;

  (* Reclamation: local replicas of the collected bunches that the trace
     did not reach are garbage here. *)
  let reclaimed = ref 0 in
  List.iter
    (fun b ->
      List.iter
        (fun (addr, obj) ->
          let uid = obj.Heap_obj.uid in
          if not (Ids.Uid_tbl.mem live uid) then begin
            Store.remove store addr;
            Protocol.forget_replica proto ~node ~uid;
            incr reclaimed;
            bump t "gc.objects_reclaimed"
          end)
        (Store.objects_of_bunch store b))
    bunches;
  pt P_scan;

  (* Scion roots for objects with no local copy (the reference was
     created here without the target ever being cached): they cannot be
     traced, but the remote copy must stay protected, so they contribute
     conservative exiting ownerPtrs towards the owner. *)
  let phantom_of_uid counter uid =
    match Store.addr_of_uid store uid with
    | Some _ -> None
    | None -> (
        match Protocol.owner_of proto uid with
        | Some owner when not (Ids.Node.equal owner node) ->
            bump t counter;
            Some (uid, owner)
        | Some _ | None -> None)
  in
  let phantom_exiting =
    List.concat_map
      (fun b ->
        List.filter_map
          (fun (s : Ssp.inter_scion) ->
            let internal =
              group_mode
              && in_set s.Ssp.xs_src_bunch
              && Ids.Node.equal s.Ssp.xs_src_node node
            in
            if internal then None
            else
              Option.map
                (fun e -> (b, e))
                (phantom_of_uid "gc.trace.phantom_scion_roots" s.Ssp.xs_target_uid))
          (Gc_state.inter_scions t ~node ~bunch:b))
      bunches
    (* Mutator-stack roots naming objects with no local copy protect the
       remote copy the same way. *)
    @ List.filter_map
        (fun a ->
          match Bmx_memory.Registry.bunch_of_addr (Protocol.registry proto) a with
          | Some b when in_set b -> (
              match Protocol.uid_of_addr proto a with
              | Some uid ->
                  Option.map
                    (fun e -> (b, e))
                    (phantom_of_uid "gc.trace.phantom_mutator_roots" uid)
              | None -> None)
          | Some _ | None -> None)
        (Gc_state.roots t ~node)
  in

  (* Stub-table reconstruction (§4.3) and exiting-ownerPtr lists, then the
     broadcast to the scion cleaners (§6). *)
  let edge_tbl : (Ids.Uid.t * Ids.Uid.t, unit) Hashtbl.t =
    Hashtbl.create (max 16 (2 * List.length edges))
  in
  List.iter
    (fun e -> Hashtbl.replace edge_tbl (e.e_src_uid, e.e_target_uid) ())
    edges;
  let edge_exists src_uid target_uid = Hashtbl.mem edge_tbl (src_uid, target_uid) in
  let new_inter_total = ref 0
  and new_intra_total = ref 0
  and exiting_total = ref 0
  and tables_sent = ref 0 in
  List.iter
    (fun b ->
      let old_inter = Gc_state.inter_stubs t ~node ~bunch:b in
      let old_intra = Gc_state.intra_stubs t ~node ~bunch:b in
      let new_inter =
        List.filter
          (fun (s : Ssp.inter_stub) ->
            Ids.Uid_tbl.mem live s.Ssp.is_src_uid
            && edge_exists s.Ssp.is_src_uid s.Ssp.is_target_uid)
          old_inter
      in
      let new_intra =
        List.filter
          (fun (s : Ssp.intra_stub) ->
            Ids.Uid_tbl.mem live s.Ssp.ns_uid
            &&
            match Directory.find dir s.Ssp.ns_uid with
            | Some r -> r.Directory.is_owner
            | None -> false)
          old_intra
      in
      (* Exiting ownerPtrs: live non-owned local objects of the bunch —
         except those reachable only via an intra-bunch scion (§6.2) —
         plus conservative entries for collected-set objects referenced
         but not cached locally. *)
      let exiting_tbl = Hashtbl.create 16 in
      List.iter
        (fun (_, obj) ->
          let uid = obj.Heap_obj.uid in
          if Ids.Uid_tbl.mem live uid && Ids.Uid_tbl.mem live_no_intra uid then
            match Directory.find dir uid with
            | Some r when not r.Directory.is_owner ->
                Hashtbl.replace exiting_tbl uid r.Directory.prob_owner
            | Some _ | None -> ())
        (Store.objects_of_bunch store b);
      List.iter
        (fun e ->
          match e.e_target_owner_hint with
          | Some (tb, owner)
            when Ids.Bunch.equal tb b
                 && Ids.Uid_tbl.mem live_no_intra e.e_src_uid
                 && not (Ids.Node.equal owner node) ->
              Hashtbl.replace exiting_tbl e.e_target_uid owner
          | Some _ | None -> ())
        edges;
      List.iter
        (fun (pb, (uid, owner)) ->
          if Ids.Bunch.equal pb b then Hashtbl.replace exiting_tbl uid owner)
        phantom_exiting;
      let exiting =
        Hashtbl.fold (fun uid owner acc -> (uid, owner) :: acc) exiting_tbl []
        |> List.sort compare
      in
      Gc_state.replace_stub_tables t ~node ~bunch:b ~inter:new_inter ~intra:new_intra;
      let sent =
        Scion_cleaner.broadcast t ~node ~bunch:b ~old_inter ~old_intra ~exiting
      in
      Gc_state.record_exiting t ~node ~bunch:b exiting;
      new_inter_total := !new_inter_total + List.length new_inter;
      new_intra_total := !new_intra_total + List.length new_intra;
      exiting_total := !exiting_total + List.length exiting;
      tables_sent := !tables_sent + sent)
    bunches;
  pt P_reconcile;

  (* The to-space becomes the new allocation space. *)
  Ids.Bunch_tbl.iter
    (fun bunch seg ->
      Segment.set_role seg Segment.Active;
      Store.set_active_segment store ~bunch seg)
    to_spaces;

  Bmx_util.Tracelog.recordf
    (Gc_state.proto t |> Protocol.tracer)
    ~category:"gc" "%s N%d %s: live=%d copied=%d reclaimed=%d"
    (if group_mode then "GGC" else "BGC")
    node
    (String.concat "," (List.map Ids.Bunch.to_string bunches))
    (Ids.Uid_tbl.length live) !copied !reclaimed;
  (* Surface the per-phase wall-clock totals of this collection. *)
  List.iter
    (fun phase ->
      let s = phase_s.(phase_idx phase) in
      charge_phase_ns phase (int_of_float (s *. 1e9));
      let us = int_of_float (s *. 1e6) in
      (match Gc_state.metrics t with
      | Some m ->
          Bmx_obs.Metrics.observe m ~node
            ("gc.phase." ^ phase_name phase)
            (float_of_int us)
      | None -> ());
      if Trace_event.enabled evlog then
        Trace_event.record evlog
          (Trace_event.Gc_phase { node; phase = phase_name phase; us }))
    all_phases;
  if Trace_event.enabled evlog then
    Trace_event.record evlog
      (Trace_event.Gc_end
         {
           node;
           group = group_mode;
           live = Ids.Uid_tbl.length live;
           reclaimed = !reclaimed;
         });
  {
    r_node = node;
    r_bunches = bunches;
    r_roots = List.length root_addrs + List.length root_uids;
    r_live = Ids.Uid_tbl.length live;
    r_copied = !copied;
    r_scanned_in_place = !scanned_in_place;
    r_reclaimed = !reclaimed;
    r_ref_updates = !ref_updates;
    r_new_inter_stubs = !new_inter_total;
    r_new_intra_stubs = !new_intra_total;
    r_exiting = !exiting_total;
    r_tables_sent = !tables_sent;
  }
