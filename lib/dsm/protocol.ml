open Bmx_util
module Net = Bmx_netsim.Net
module Store = Bmx_memory.Store
module Registry = Bmx_memory.Registry
module Heap_obj = Bmx_memory.Heap_obj
module Value = Bmx_memory.Value

type mode = Centralized | Distributed
type update_policy = Eager | Lazy
type actor = App | Gc

type location_update = { lu_uid : Ids.Uid.t; old_addr : Addr.t; new_addr : Addr.t }

type hooks = {
  before_write_grant :
    granter:Ids.Node.t -> requester:Ids.Node.t -> uid:Ids.Uid.t -> unit;
}

let no_hooks = { before_write_grant = (fun ~granter:_ ~requester:_ ~uid:_ -> ()) }

type t = {
  net : (int -> unit) Net.t;
  registry : Registry.t;
  mode : mode;
  update_policy : update_policy;
  mutable hooks : hooks;
  stores : Store.t Ids.Node_tbl.t;
  dirs : Directory.t Ids.Node_tbl.t;
  homes : Ids.Node.t Ids.Bunch_tbl.t;
  uidgen : Ids.Uid.gen;
  addr_oracle : (Addr.t, Ids.Uid.t) Hashtbl.t;
  owners : Ids.Node.t Ids.Uid_tbl.t;
      (* cached owner per uid — a hint, validated against the directory
         on every lookup (tests and crashes may flip [is_owner] without
         going through the protocol) and repaired by scan on a miss *)
  tracer : Tracelog.t;
  evlog : Trace_event.log;
  mutable obs : Bmx_obs.Metrics.t option;
  mutable copyset_hist : int array;
      (* [copyset_hist.(c)] = directory records, across every node, whose
         copyset has cardinality [c] (c >= 1; empty copysets untracked) *)
  mutable copyset_max : int;
      (* top nonzero histogram index — the largest live copyset, read by
         the continuous sampler once per closed window, so it must be
         O(1): a full directory scan here dominated the e20 sweep *)
}

let create ~net ~registry ?(mode = Distributed) ?(update_policy = Lazy) () =
  {
    net;
    registry;
    mode;
    update_policy;
    hooks = no_hooks;
    stores = Ids.Node_tbl.create 8;
    dirs = Ids.Node_tbl.create 8;
    homes = Ids.Bunch_tbl.create 8;
    uidgen = Ids.Uid.generator ();
    addr_oracle = Hashtbl.create 1024;
    owners = Ids.Uid_tbl.create 1024;
    tracer = (let tr = Tracelog.create () in Tracelog.set_enabled tr false; tr);
    evlog = Trace_event.create_log ();
    obs = None;
    copyset_hist = Array.make 8 0;
    copyset_max = 0;
  }

(* Every copyset write reports its before/after cardinality here (record
   removal reports [~now:0]); the histogram's top index is then the exact
   cluster-wide maximum, maintained in O(1) amortized. *)
let copyset_changed t ~was ~now =
  if was <> now then begin
    let h =
      if now < Array.length t.copyset_hist then t.copyset_hist
      else begin
        let g = Array.make (2 * (now + 1)) 0 in
        Array.blit t.copyset_hist 0 g 0 (Array.length t.copyset_hist);
        t.copyset_hist <- g;
        g
      end
    in
    if was > 0 then h.(was) <- h.(was) - 1;
    if now > 0 then h.(now) <- h.(now) + 1;
    if now > t.copyset_max then t.copyset_max <- now
    else
      while t.copyset_max > 0 && h.(t.copyset_max) = 0 do
        t.copyset_max <- t.copyset_max - 1
      done
  end

let set_hooks t hooks = t.hooks <- hooks
let tracer t = t.tracer
let evlog t = t.evlog

let set_metrics t m =
  t.obs <- Some m;
  Bmx_obs.Metrics.gauge_fn m "dsm.oracle.entries" (fun () ->
      Hashtbl.length t.addr_oracle);
  (* Largest copyset across every directory — how widely the most shared
     object has spread (§2.2).  Served from the cardinality histogram in
     O(1): the continuous sampler reads this once per closed window, and
     the previous full directory scan (materialise + sort every record
     list) cost ~500k minor words per sample at the e20 sweep's largest
     leg and dominated the measured loop's allocation. *)
  Bmx_obs.Metrics.gauge_fn m "dsm.copyset.max" (fun () -> t.copyset_max)

let obs_observe t ?node name v =
  match t.obs with
  | None -> ()
  | Some m -> Bmx_obs.Metrics.observe m ?node name (float_of_int v)

let ev t e = if Trace_event.enabled t.evlog then Trace_event.record t.evlog e

let ev_actor = function App -> Trace_event.App | Gc -> Trace_event.Gc
let ev_tok = function `Read -> Trace_event.Read | `Write -> Trace_event.Write

let trace t category fmt = Tracelog.recordf t.tracer ~category fmt
let net t = t.net
let stats t = Net.stats t.net
let registry t = t.registry
let mode t = t.mode

let add_node t node =
  if Ids.Node_tbl.mem t.stores node then
    invalid_arg "Protocol.add_node: duplicate node";
  Ids.Node_tbl.add t.stores node (Store.create ~registry:t.registry ~node);
  Ids.Node_tbl.add t.dirs node (Directory.create ~node)

let nodes t =
  Ids.Node_tbl.fold (fun n _ acc -> n :: acc) t.stores []
  |> List.sort Ids.Node.compare

let store t node =
  match Ids.Node_tbl.find_opt t.stores node with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Protocol.store: unknown node N%d" node)

let directory t node =
  match Ids.Node_tbl.find_opt t.dirs node with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Protocol.directory: unknown node N%d" node)

let declare_bunch t ~bunch ~home =
  ignore (store t home);
  Ids.Bunch_tbl.replace t.homes bunch home

let bunch_home t bunch =
  match Ids.Bunch_tbl.find_opt t.homes bunch with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Protocol.bunch_home: unknown bunch B%d" bunch)

let bunches t =
  Ids.Bunch_tbl.fold (fun b _ acc -> b :: acc) t.homes []
  |> List.sort Ids.Bunch.compare

(* The registry shard whose region carved this address, if any.  All
   location traffic about the address — oracle consults, grants and
   their piggybacked updates, copy-set forwards — is labelled with it,
   so the wire attribution can show location load staying partitioned
   instead of funnelling through one authority. *)
let shard_of t addr = Registry.shard_of_addr t.registry addr

let actor_prefix = function App -> "dsm.app" | Gc -> "dsm.gc"
let bump t name = Stats.incr (stats t) name
let note_owner t ~uid ~node = Ids.Uid_tbl.replace t.owners uid node

(* ------------------------------------------------------------------ *)
(* Allocation and the address oracle.                                  *)

let alloc t ~node ~bunch ~fields =
  let uid = Ids.Uid.fresh t.uidgen in
  let addr = Store.alloc (store t node) ~bunch ~uid ~fields in
  ignore (Directory.register_new_object (directory t node) ~uid);
  note_owner t ~uid ~node;
  Hashtbl.replace t.addr_oracle addr uid;
  bump t "dsm.alloc";
  addr

let register_copy_location t ~uid ~addr = Hashtbl.replace t.addr_oracle addr uid
let uid_of_addr t addr = Hashtbl.find_opt t.addr_oracle addr

(* ------------------------------------------------------------------ *)
(* Oracles.                                                            *)

let owner_scan t uid =
  Ids.Node_tbl.fold
    (fun node d acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          match Directory.find d uid with
          | Some r when r.Directory.is_owner -> Some node
          | Some _ | None -> None))
    t.dirs None

let owner_confirmed t uid node =
  match Ids.Node_tbl.find_opt t.dirs node with
  | None -> false
  | Some d -> (
      match Directory.find d uid with
      | Some r -> r.Directory.is_owner
      | None -> false)

let owner_of t uid =
  match Ids.Uid_tbl.find_opt t.owners uid with
  | Some n when owner_confirmed t uid n -> Some n
  | Some _ | None -> (
      match owner_scan t uid with
      | Some n ->
          Ids.Uid_tbl.replace t.owners uid n;
          Some n
      | None ->
          Ids.Uid_tbl.remove t.owners uid;
          None)

let replica_nodes t uid =
  Ids.Node_tbl.fold
    (fun node s acc ->
      match Store.addr_of_uid s uid with Some _ -> node :: acc | None -> acc)
    t.stores []
  |> List.sort Ids.Node.compare

(* Resolve an address to the identity of the object it names, from the
   point of view of node [n].  Normally the local store knows; otherwise
   the location service answers, two-level: the first hop is the owner
   of the address's registry shard (O(1) arithmetic routing — the shard
   owner's BMX-server holds the directory slice for its own regions),
   which returns the identity and a probable-owner hint; only if that
   owner is down does the consult fall back to the bunch's home node,
   the pre-sharding single authority.  Either way the answer itself
   comes from the address oracle, which stands in for both levels'
   BMX-server state (§8). *)
let locate t n addr =
  match Store.resolve (store t n) addr with
  | Some (_, obj) -> obj.Heap_obj.uid
  | None -> (
      match Hashtbl.find_opt t.addr_oracle addr with
      | Some uid ->
          let consult_bunch_home () =
            match Registry.bunch_of_addr t.registry addr with
            | Some bunch when Ids.Bunch_tbl.mem t.homes bunch ->
                let home = bunch_home t bunch in
                if not (Ids.Node.equal home n) then
                  Net.record_rpc t.net ~src:n ~dst:home ~kind:Net.Object_fetch
                    ()
            | Some _ | None -> ()
          in
          (match shard_of t addr with
          | Some shard
            when Registry.shard_up t.registry shard
                 && not (Net.is_down t.net (Registry.shard_owner t.registry shard))
                 && Net.reachable t.net n (Registry.shard_owner t.registry shard)
            ->
              let home = Registry.shard_owner t.registry shard in
              if not (Ids.Node.equal home n) then
                Net.record_rpc t.net ~src:n ~dst:home ~kind:Net.Object_fetch
                  ~shard ()
          | Some _ | None -> consult_bunch_home ());
          uid
      | None ->
          failwith
            (Printf.sprintf "Protocol.locate: dangling address %s at N%d"
               (Addr.to_string addr) n))

(* Follow the ownerPtr (probable-owner) chain from [start] to the current
   owner, recording one forwarded request message per hop.  Returns the
   owner and the chain of intermediate nodes visited. *)
let chase_owner t ~actor ~start uid =
  let rec go node visited fuel =
    if fuel = 0 then failwith "Protocol.chase_owner: ownerPtr cycle"
    else
      match Directory.find (directory t node) uid with
      | Some r when r.Directory.is_owner -> (node, List.rev visited)
      | Some r ->
          let next = r.Directory.prob_owner in
          Net.record_rpc t.net ~src:node ~dst:next ~kind:Net.Token_request ();
          bump t (actor_prefix actor ^ ".hops");
          go next (node :: visited) (fuel - 1)
      | None -> (
          (* This node never heard of the object; the owner oracle stands in
             for the BMX-server's directory. *)
          match owner_of t uid with
          | Some owner ->
              if not (Ids.Node.equal owner node) then begin
                Net.record_rpc t.net ~src:node ~dst:owner ~kind:Net.Token_request ();
                bump t (actor_prefix actor ^ ".hops")
              end;
              (owner, List.rev visited)
          | None ->
              failwith
                (Printf.sprintf "Protocol.chase_owner: no owner for %s"
                   (Ids.Uid.to_string uid)))
  in
  go start [] 64

(* First node along the chain from [start] that holds a valid token
   (read-token grants can come from any read-token holder, §2.2). *)
let find_read_granter t ~actor ~start uid =
  match t.mode with
  | Centralized -> chase_owner t ~actor ~start uid
  | Distributed ->
      let rec go node visited fuel =
        if fuel = 0 then failwith "Protocol.find_read_granter: cycle"
        else
          match Directory.find (directory t node) uid with
          | Some r
            when (not (Ids.Node.equal node start))
                 && (r.Directory.state = Directory.Read
                    || r.Directory.state = Directory.Write) ->
              (node, List.rev visited)
          | Some r when r.Directory.is_owner -> (node, List.rev visited)
          | Some r ->
              let next = r.Directory.prob_owner in
              Net.record_rpc t.net ~src:node ~dst:next ~kind:Net.Token_request ();
              bump t (actor_prefix actor ^ ".hops");
              go next (node :: visited) (fuel - 1)
          | None -> (
              match owner_of t uid with
              | Some owner ->
                  if not (Ids.Node.equal owner node) then begin
                    Net.record_rpc t.net ~src:node ~dst:owner
                      ~kind:Net.Token_request ();
                    bump t (actor_prefix actor ^ ".hops")
                  end;
                  (owner, List.rev visited)
              | None -> failwith "Protocol.find_read_granter: no owner")
      in
      (* Start the chase at the requester's own ownerPtr. *)
      let first =
        match Directory.find (directory t start) uid with
        | Some r when not r.Directory.is_owner -> r.Directory.prob_owner
        | Some _ | None -> start
      in
      if Ids.Node.equal first start then go start [] 64
      else begin
        Net.record_rpc t.net ~src:start ~dst:first ~kind:Net.Token_request ();
        bump t (actor_prefix actor ^ ".hops");
        go first [ start ] 64
      end

(* ------------------------------------------------------------------ *)
(* Location updates (§4.4, §5 invariants 1 and 2).                     *)

let update_bytes = 24

(* New-location information node [g] can piggyback about the object [uid]
   it is granting, plus everything the granted copy references directly:
   for each, the two newest addresses [g] itself has seen.  Composed purely
   from [g]'s local knowledge. *)
let compute_updates t ~granter:g ~requested addr gobj =
  let gstore = store t g in
  let for_uid uid =
    match Store.address_history gstore uid with
    | newest :: prev :: _ -> Some { lu_uid = uid; old_addr = prev; new_addr = newest }
    | [ _ ] | [] -> None
  in
  let acquired =
    let u = gobj.Heap_obj.uid in
    match for_uid u with
    | Some up -> [ up ]
    | None ->
        if Addr.equal requested addr then []
        else [ { lu_uid = u; old_addr = requested; new_addr = addr } ]
  in
  let referents =
    List.filter_map
      (fun a ->
        let cur = Store.current_addr gstore a in
        match Hashtbl.find_opt t.addr_oracle cur with
        | None -> None
        | Some u -> (
            match for_uid u with
            | Some up -> Some up
            | None ->
                if Addr.equal cur a then None
                else Some { lu_uid = u; old_addr = a; new_addr = cur }))
      (Heap_obj.pointers gobj)
  in
  (* Coalesce per destination: several fields naming the same object must
     not cost several piggybacked entries.  Last write wins, first
     occurrence keeps its position. *)
  let newest : (Ids.Uid.t, location_update) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun up ->
      if not (Hashtbl.mem newest up.lu_uid) then order := up.lu_uid :: !order;
      Hashtbl.replace newest up.lu_uid up)
    (acquired @ referents);
  List.rev_map (Hashtbl.find newest) !order

(* Rewrite the pointer fields of a local object copy through the local
   forwarder chains (Figure 3 case (d): references to from-space forwarding
   pointers are retargeted to to-space directly). *)
let fix_fields_through_forwarders t node obj_addr (obj : Heap_obj.t) =
  let s = store t node in
  Heap_obj.iteri_pointers obj (fun i a ->
      let a' = Store.current_addr s a in
      if not (Addr.equal a a') then begin
        Heap_obj.fixup obj i (Value.Ref a');
        Store.note_field_write s ~obj_addr ~index:i (Value.Ref a');
        bump t "dsm.ref_fixes"
      end)

let rec apply_location_updates t ~node updates =
  let s = store t node in
  let d = directory t node in
  let changed =
    List.filter
      (fun { lu_uid; old_addr; new_addr } ->
        if Addr.equal old_addr new_addr then false
        else begin
          let already =
            Store.current_addr s old_addr = new_addr
            && Store.addr_of_uid s lu_uid <> Some old_addr
          in
          if already then false
          else begin
            (* Move the local copy, if any, to the new address; leave a
               forwarding header behind (§4.4: "o2 is copied to the
               indicated address, and all the local references are updated
               accordingly without requiring any token"). *)
            (match Store.addr_of_uid s lu_uid with
            | Some cur when not (Addr.equal cur new_addr) -> (
                match Store.cell s cur with
                | Some (Store.Object obj) ->
                    Store.install s new_addr obj;
                    Store.set_forwarder s ~at:cur ~target:new_addr
                | Some (Store.Forwarder _) | None -> ())
            | Some _ | None -> ());
            (* Always install the forwarder at the old published address so
               stale pointers held locally keep resolving. *)
            (match Store.cell s old_addr with
            | Some (Store.Object obj) when Heap_obj.(obj.uid) = lu_uid ->
                Store.install s new_addr obj;
                Store.set_forwarder s ~at:old_addr ~target:new_addr
            | Some (Store.Object _) | Some (Store.Forwarder _) -> ()
            | None -> Store.set_forwarder s ~at:old_addr ~target:new_addr);
            true
          end
        end)
      updates
  in
  if updates <> [] then
    ev t
      (Trace_event.Updates_applied
         { node; uids = List.map (fun u -> u.lu_uid) updates });
  (match t.update_policy with
  | Eager ->
      (* Sweep local copies, rewriting pointers through forwarders now
         rather than at the next BGC. *)
      Store.iter s (fun a c ->
          match c with
          | Store.Object obj -> fix_fields_through_forwarders t node a obj
          | Store.Forwarder _ -> ())
  | Lazy -> ());
  (* Invariant 2 (§5): forward fresh information to every node in the
     local copy-set for the object, the way read-copy invalidations
     propagate.  Background messages; receivers recurse. *)
  List.iter
    (fun ({ lu_uid; _ } as up) ->
      match Directory.find d lu_uid with
      | None -> ()
      | Some r ->
          if not (Ids.Node_set.is_empty r.Directory.copyset) then
            ev t
              (Trace_event.Forward_due
                 {
                   node;
                   uid = lu_uid;
                   peers = Ids.Node_set.elements r.Directory.copyset;
                 });
          Ids.Node_set.iter
            (fun peer ->
              ev t (Trace_event.Copyset_forward { src = node; dst = peer; uid = lu_uid });
              Net.send t.net ~src:node ~dst:peer ~kind:Net.Addr_update
                ~bytes:update_bytes
                ?shard:(shard_of t up.new_addr)
                (fun _seq -> apply_location_updates t ~node:peer [ up ]))
            r.Directory.copyset)
    changed

let send_location_updates t ~src ~dst updates =
  (* A batch is routed as one message; label it with the shard of the
     lead update (the acquired object — referent updates ride along). *)
  let shard =
    match updates with [] -> None | up :: _ -> shard_of t up.new_addr
  in
  Net.send t.net ~src ~dst ~kind:Net.Addr_update
    ~bytes:(List.length updates * update_bytes)
    ?shard
    (fun _seq -> apply_location_updates t ~node:dst updates)

(* ------------------------------------------------------------------ *)
(* Invalidation of the read copy-set tree (write-token acquire).       *)

(* Pre-flight for a write grant: every read-copy holder reachable from
   [node] through the copyset tree must be invalidatable.  A holder
   that is down lost its token with its volatile directory, so it needs
   no invalidation; a holder that is {e alive but cut off} still holds
   a live read token we cannot revoke — granting the write would leave
   a reader and a writer coexisting across the partition.  The check
   runs before any mutation so a refusal leaves no partial state. *)
let rec invalidation_reachable t node uid =
  match Directory.find (directory t node) uid with
  | None -> true
  | Some r ->
      Ids.Node_set.for_all
        (fun peer ->
          Ids.Node.equal peer node
          || Net.is_down t.net peer
          || (Net.reachable t.net node peer
             && invalidation_reachable t peer uid))
        r.Directory.copyset

let rec invalidate_subtree t ~actor ~skip node uid =
  let d = directory t node in
  match Directory.find d uid with
  | None -> ()
  | Some r ->
      let grantees = r.Directory.copyset in
      r.Directory.copyset <- Ids.Node_set.empty;
      copyset_changed t ~was:(Ids.Node_set.cardinal grantees) ~now:0;
      Ids.Node_set.iter
        (fun peer ->
          if not (Ids.Node.equal peer node) then begin
            (* A dead peer's token died with its volatile directory: no
               invalidation to send.  (Its possibly-cut link must not
               make the walk raise mid-mutation either.) *)
            if not (Net.is_down t.net peer) then begin
              Net.record_rpc t.net ~src:node ~dst:peer ~kind:Net.Invalidate ();
              ev t (Trace_event.Invalidate { src = node; dst = peer; uid });
              trace t "dsm" "invalidate u%d at N%d (from N%d)" uid peer node;
              bump t (actor_prefix actor ^ ".invalidations")
            end;
            invalidate_subtree t ~actor ~skip peer uid
          end)
        grantees;
      if not (Ids.Node.equal node skip) then begin
        if r.Directory.held && r.Directory.state <> Directory.Invalid then
          failwith "Protocol: invalidating a held token (missing release?)";
        r.Directory.state <- Directory.Invalid
      end

(* ------------------------------------------------------------------ *)
(* Token acquisition.                                                  *)

let grant_bytes obj updates =
  32 + Heap_obj.size_bytes obj + (List.length updates * update_bytes)

let install_granted t ~node ~gaddr gobj =
  let s = store t node in
  let prev = Store.addr_of_uid s gobj.Heap_obj.uid in
  (* Always install a fresh clone: [Store.install] maintains the object
     and reference maps, which a field-level overwrite would not. *)
  Store.install s gaddr (Heap_obj.clone gobj);
  (match prev with
  | Some p when not (Addr.equal p gaddr) -> Store.set_forwarder s ~at:p ~target:gaddr
  | Some _ | None -> ());
  match Store.cell s gaddr with
  | Some (Store.Object obj) ->
      fix_fields_through_forwarders t node gaddr obj;
      obj
  | Some (Store.Forwarder _) | None -> assert false

let acquire t ?(actor = App) ~node:n addr kind =
  let pfx = actor_prefix actor in
  let uid = locate t n addr in
  let s_n = store t n in
  let d_n = directory t n in
  let kind_str = match kind with `Read -> "read" | `Write -> "write" in
  bump t (pfx ^ ".acquire_" ^ kind_str);
  ev t
    (Trace_event.Acquire_start
       { actor = ev_actor actor; node = n; uid; tok = ev_tok kind });
  let ev_done () =
    ev t
      (Trace_event.Acquire_done
         {
           actor = ev_actor actor;
           node = n;
           uid;
           tok = ev_tok kind;
           addr_valid = Store.addr_of_uid s_n uid <> None;
         })
  in
  let local_ok =
    match Directory.find d_n uid with
    | Some r -> (
        match kind with
        | `Read ->
            (r.Directory.state = Directory.Read
            || r.Directory.state = Directory.Write)
            && Store.addr_of_uid s_n uid <> None
        | `Write ->
            r.Directory.is_owner
            && r.Directory.state = Directory.Write
            && Store.addr_of_uid s_n uid <> None)
    | None -> false
  in
  if local_ok then begin
    bump t (pfx ^ ".acquire_local");
    let r = Option.get (Directory.find d_n uid) in
    r.Directory.held <- true;
    ev_done ();
    Option.get (Store.addr_of_uid s_n uid)
  end
  else begin
    match kind with
    | `Read ->
        (* Conflict check: a held write token anywhere blocks readers. *)
        (match owner_of t uid with
        | Some o when not (Ids.Node.equal o n) -> (
            match Directory.find (directory t o) uid with
            | Some ro
              when ro.Directory.held && ro.Directory.state = Directory.Write ->
                failwith "Protocol.acquire: write token held elsewhere"
            | Some _ | None -> ())
        | Some _ | None -> ());
        let granter, _visited = find_read_granter t ~actor ~start:n uid in
        (* Partition pre-flight: the grant is a synchronous round trip,
           so an unreachable granter fails the acquire cleanly before
           any directory state is touched. *)
        if
          (not (Ids.Node.equal granter n))
          && not (Net.reachable t.net granter n)
        then failwith "Protocol.acquire: granter unreachable (partition)";
        let g_dir = directory t granter in
        let g_rec =
          match Directory.find g_dir uid with
          | Some r -> r
          | None -> failwith "Protocol.acquire: granter lost the record"
        in
        (* An owner holding the write token downgrades to read: several
           read tokens or one write token, never both (§2.2). *)
        if g_rec.Directory.state = Directory.Write then
          g_rec.Directory.state <- Directory.Read;
        if g_rec.Directory.state <> Directory.Read then
          failwith "Protocol.acquire: granter has no valid copy";
        let cs_was = Ids.Node_set.cardinal g_rec.Directory.copyset in
        g_rec.Directory.copyset <- Ids.Node_set.add n g_rec.Directory.copyset;
        let cs_now = Ids.Node_set.cardinal g_rec.Directory.copyset in
        copyset_changed t ~was:cs_was ~now:cs_now;
        obs_observe t ~node:granter "dsm.copyset.size" cs_now;
        Directory.add_entering g_dir
          ~seq:(Net.current_seq t.net ~src:n ~dst:granter)
          ~uid ~from:n;
        let g_store = store t granter in
        let gaddr, gobj =
          match Store.addr_of_uid g_store uid with
          | Some a -> (
              match Store.resolve g_store a with
              | Some (a', o) -> (a', o)
              | None -> failwith "Protocol.acquire: granter copy vanished")
          | None -> failwith "Protocol.acquire: granter has no copy"
        in
        let updates = compute_updates t ~granter ~requested:addr gaddr gobj in
        Net.record_rpc t.net ~src:granter ~dst:n ~kind:Net.Token_grant
          ~bytes:(grant_bytes gobj updates) ?shard:(shard_of t gaddr) ();
        ev t
          (Trace_event.Grant_sent
             {
               granter;
               requester = n;
               uid;
               tok = Trace_event.Read;
               updates = List.length updates;
             });
        obs_observe t ~node:granter "dsm.grant.updates" (List.length updates);
        if updates <> [] then
          Net.record_piggyback t.net ~src:granter ~kind:Net.Token_grant
            ~bytes:(List.length updates * update_bytes)
            ?shard:(shard_of t gaddr) ();
        trace t "dsm" "read grant u%d: N%d -> N%d (%d updates)" uid granter n
          (List.length updates);
        let r_n =
          Directory.ensure d_n ~uid
            ~prob_owner:
              (if g_rec.Directory.is_owner then granter
               else g_rec.Directory.prob_owner)
        in
        ignore (install_granted t ~node:n ~gaddr gobj);
        r_n.Directory.state <- Directory.Read;
        r_n.Directory.held <- true;
        if not r_n.Directory.is_owner then begin
          r_n.Directory.prob_owner <-
            (if g_rec.Directory.is_owner then granter
             else g_rec.Directory.prob_owner);
          Directory.touch d_n
        end;
        (* Invariant 1 completes before the acquire returns. *)
        apply_location_updates t ~node:n updates;
        ev_done ();
        Option.get (Store.addr_of_uid s_n uid)
    | `Write ->
        let owner, visited = chase_owner t ~actor ~start:n uid in
        if Ids.Node.equal owner n then begin
          (* We were the owner all along (stale local state); revalidate. *)
          if not (invalidation_reachable t owner uid) then
            failwith
              "Protocol.acquire: read-copy holder unreachable (partition)";
          let r = Directory.ensure d_n ~uid ~prob_owner:n in
          r.Directory.is_owner <- true;
          Directory.touch d_n;
          note_owner t ~uid ~node:n;
          invalidate_subtree t ~actor ~skip:n owner uid;
          r.Directory.state <- Directory.Write;
          r.Directory.held <- true;
          ev_done ();
          match Store.addr_of_uid s_n uid with
          | Some a -> a
          | None -> failwith "Protocol.acquire: owner without a copy"
        end
        else begin
          let o_dir = directory t owner in
          let o_rec =
            match Directory.find o_dir uid with
            | Some r -> r
            | None -> failwith "Protocol.acquire: owner lost the record"
          in
          if o_rec.Directory.held then
            failwith "Protocol.acquire: write token held elsewhere";
          (* Partition pre-flight, before any mutation: the grant and
             ownership transfer need the owner round trip, and every
             live read-copy holder must be invalidatable — refusing the
             cross-partition write here is what guarantees healing never
             finds two owners or a writer coexisting with readers. *)
          if not (Net.reachable t.net owner n) then
            failwith "Protocol.acquire: owner unreachable (partition)";
          if not (invalidation_reachable t owner uid) then
            failwith
              "Protocol.acquire: read-copy holder unreachable (partition)";
          (* Invalidate every read copy (the requester keeps its cached
             data; it is about to receive the authoritative copy). *)
          invalidate_subtree t ~actor ~skip:n owner uid;
          (* Invariant 3 (§5): intra-bunch SSPs are created before the
             grant message is sent. *)
          ev t (Trace_event.Hook_ssp { granter = owner; requester = n; uid });
          t.hooks.before_write_grant ~granter:owner ~requester:n ~uid;
          let o_store = store t owner in
          let gaddr, gobj =
            match Store.addr_of_uid o_store uid with
            | Some a -> (
                match Store.resolve o_store a with
                | Some (a', o) -> (a', o)
                | None -> failwith "Protocol.acquire: owner copy vanished")
            | None -> failwith "Protocol.acquire: owner has no copy"
          in
          let updates = compute_updates t ~granter:owner ~requested:addr gaddr gobj in
          Net.record_rpc t.net ~src:owner ~dst:n ~kind:Net.Token_grant
            ~bytes:(grant_bytes gobj updates) ?shard:(shard_of t gaddr) ();
          ev t
            (Trace_event.Grant_sent
               {
                 granter = owner;
                 requester = n;
                 uid;
                 tok = Trace_event.Write;
                 updates = List.length updates;
               });
          obs_observe t ~node:owner "dsm.grant.updates" (List.length updates);
          if updates <> [] then
            Net.record_piggyback t.net ~src:owner ~kind:Net.Token_grant
              ~bytes:(List.length updates * update_bytes)
              ?shard:(shard_of t gaddr) ();
          (* Ownership transfer: the old owner keeps an inconsistent copy
             (Figure 1: o3 marked "i" at N2) and its ownerPtr now exits
             towards the new owner. *)
          trace t "dsm" "ownership u%d: N%d -> N%d (%d updates)" uid owner n
            (List.length updates);
          o_rec.Directory.state <- Directory.Invalid;
          o_rec.Directory.is_owner <- false;
          o_rec.Directory.prob_owner <- n;
          copyset_changed t
            ~was:(Ids.Node_set.cardinal o_rec.Directory.copyset)
            ~now:0;
          o_rec.Directory.copyset <- Ids.Node_set.empty;
          Directory.touch (directory t owner);
          let r_n = Directory.ensure d_n ~uid ~prob_owner:n in
          ignore (install_granted t ~node:n ~gaddr gobj);
          r_n.Directory.state <- Directory.Write;
          r_n.Directory.is_owner <- true;
          Directory.touch d_n;
          note_owner t ~uid ~node:n;
          r_n.Directory.held <- true;
          r_n.Directory.prob_owner <- n;
          copyset_changed t
            ~was:(Ids.Node_set.cardinal r_n.Directory.copyset)
            ~now:0;
          r_n.Directory.copyset <- Ids.Node_set.empty;
          Directory.add_entering d_n
            ~seq:(Net.current_seq t.net ~src:owner ~dst:n)
            ~uid ~from:owner;
          (* Path compression: nodes along the chase now point at the new
             owner, and their replicas become entering ownerPtrs here. *)
          List.iter
            (fun v ->
              if not (Ids.Node.equal v n) then begin
                (match Directory.find (directory t v) uid with
                | Some rv when not rv.Directory.is_owner ->
                    rv.Directory.prob_owner <- n;
                    Directory.touch (directory t v)
                | Some _ | None -> ());
                if Store.addr_of_uid (store t v) uid <> None then
                  Directory.add_entering d_n
                    ~seq:(Net.current_seq t.net ~src:v ~dst:n)
                    ~uid ~from:v
              end)
            visited;
          apply_location_updates t ~node:n updates;
          ev_done ();
          Option.get (Store.addr_of_uid s_n uid)
        end
  end

let release t ~node addr =
  let uid = locate t node addr in
  ev t (Trace_event.Release { node; uid });
  match Directory.find (directory t node) uid with
  | Some r -> r.Directory.held <- false
  | None -> ()

let demand_fetch t ?(actor = App) ~node:n addr =
  let uid = locate t n addr in
  let s_n = store t n in
  match Store.addr_of_uid s_n uid with
  | Some a -> a
  | None ->
      bump t (actor_prefix actor ^ ".faults");
      let supplier, _ = chase_owner t ~actor ~start:n uid in
      let sup_store = store t supplier in
      let gaddr, gobj =
        match Store.addr_of_uid sup_store uid with
        | Some a -> (
            match Store.resolve sup_store a with
            | Some (a', o) -> (a', o)
            | None -> failwith "Protocol.demand_fetch: supplier copy vanished")
        | None -> failwith "Protocol.demand_fetch: supplier has no copy"
      in
      let updates = compute_updates t ~granter:supplier ~requested:addr gaddr gobj in
      Net.record_rpc t.net ~src:n ~dst:supplier ~kind:Net.Object_fetch
        ?shard:(shard_of t gaddr) ();
      Net.record_rpc t.net ~src:supplier ~dst:n ~kind:Net.Token_grant
        ~bytes:(grant_bytes gobj updates) ?shard:(shard_of t gaddr) ();
      (* The fetched copy carries no token: it is inconsistent from the
         start, exactly like an invalidated replica. *)
      let r_n = Directory.ensure (directory t n) ~uid ~prob_owner:supplier in
      ignore (install_granted t ~node:n ~gaddr gobj);
      r_n.Directory.state <- Directory.Invalid;
      (* The supplier (owner) must keep the object alive for us. *)
      Directory.add_entering (directory t supplier)
        ~seq:(Net.current_seq t.net ~src:n ~dst:supplier)
        ~uid ~from:n;
      apply_location_updates t ~node:n updates;
      Option.get (Store.addr_of_uid s_n uid)

(* ------------------------------------------------------------------ *)
(* Data access.                                                        *)

let resolve_local t node addr =
  let s = store t node in
  match Store.resolve s addr with
  | Some (a, obj) -> (a, obj)
  | None -> (
      (* The address may be stale beyond the local forwarder chain; the
         stable identity recovers the local copy if one exists. *)
      match uid_of_addr t addr with
      | Some uid -> (
          match Store.addr_of_uid s uid with
          | Some a -> (
              match Store.resolve s a with
              | Some (a', obj) -> (a', obj)
              | None -> failwith "Protocol: local index out of date")
          | None ->
              failwith
                (Printf.sprintf "Protocol: no local copy of %s at N%d"
                   (Ids.Uid.to_string uid) node))
      | None ->
          failwith
            (Printf.sprintf "Protocol: dangling address %s" (Addr.to_string addr)))

let read_field t ?(weak = false) ~node addr index =
  let _, obj = resolve_local t node addr in
  let covered =
    match Directory.find (directory t node) obj.Heap_obj.uid with
    | Some r -> r.Directory.state <> Directory.Invalid
    | None -> false
  in
  if (not weak) && not covered then
    failwith "Protocol.read_field: no read token (use ~weak for stale reads)";
  let v = Heap_obj.get obj index in
  ev t
    (Trace_event.Read_obs
       {
         actor = Trace_event.App;
         node;
         uid = obj.Heap_obj.uid;
         version = Heap_obj.version obj;
         covered;
       });
  v

let write_field_raw t ~node addr index v =
  let a, obj = resolve_local t node addr in
  (match Directory.find (directory t node) obj.Heap_obj.uid with
  | Some r when r.Directory.state = Directory.Write && r.Directory.is_owner -> ()
  | Some _ | None -> failwith "Protocol.write_field_raw: no write token");
  Heap_obj.set obj index v;
  ev t
    (Trace_event.Write_obs
       {
         actor = Trace_event.App;
         node;
         uid = obj.Heap_obj.uid;
         version = Heap_obj.version obj;
         covered = true;
       });
  Store.note_field_write (store t node) ~obj_addr:a ~index v

let ptr_eq t ~node a b =
  if Addr.is_null a || Addr.is_null b then Addr.equal a b
  else
    let s = store t node in
    let a' = Store.current_addr s a and b' = Store.current_addr s b in
    if Addr.equal a' b' then true
    else
      match (uid_of_addr t a', uid_of_addr t b') with
      | Some ua, Some ub -> Ids.Uid.equal ua ub
      | _ -> false

let bunch_replica_nodes t bunch =
  Ids.Node_tbl.fold
    (fun node s acc ->
      if Store.has_objects_of_bunch s bunch then node :: acc else acc)
    t.stores []
  |> List.sort Ids.Node.compare

let forget_replica t ~node ~uid =
  let d = directory t node in
  (match Directory.find d uid with
  | Some r ->
      copyset_changed t
        ~was:(Ids.Node_set.cardinal r.Directory.copyset)
        ~now:0
  | None -> ());
  Directory.forget d uid

let crash_node t node =
  (* The node's volatile DSM state — its cached copies and its directory,
     including every token it held, its ownerPtrs, copysets and entering
     tables — is lost wholesale.  The cluster-wide bunch directory
     (homes, address oracle) is BMX-server state and survives; other
     nodes keep their possibly-stale records about the crashed node, the
     same way they would across a real crash. *)
  ignore (store t node);
  (* Drain the dying directory's copysets from the histogram before the
     records vanish. *)
  Directory.iter (directory t node) (fun r ->
      copyset_changed t
        ~was:(Ids.Node_set.cardinal r.Directory.copyset)
        ~now:0);
  Ids.Node_tbl.replace t.stores node (Store.create ~registry:t.registry ~node);
  Ids.Node_tbl.replace t.dirs node (Directory.create ~node)

let adopt_ownership t ~node ~uid =
  if Store.addr_of_uid (store t node) uid = None then
    invalid_arg "Protocol.adopt_ownership: adopting node has no copy";
  let old_owner = owner_of t uid in
  (* Split-brain guard: adoption is only legal when the recorded owner
     is {e known} to have lost its token (crashed — volatile directory
     gone), never when it is merely unreachable.  An owner on the far
     side of a partition still holds live state; adopting here and
     healing later would leave two owners of one cell.  Likewise every
     surviving replica must be reachable, or its live read token could
     not be re-registered in the rebuilt copyset — recovery of
     ownership waits for heal instead (the caller retries). *)
  (match old_owner with
  | Some o
    when (not (Ids.Node.equal o node)) && not (Net.is_down t.net o) ->
      if not (Net.reachable t.net node o) then
        failwith
          "Protocol.adopt_ownership: recorded owner unreachable (partition?)"
  | Some _ | None -> ());
  List.iter
    (fun n ->
      if
        (not (Ids.Node.equal n node))
        && (not (Net.is_down t.net n))
        && not (Net.reachable t.net node n)
      then
        failwith
          "Protocol.adopt_ownership: surviving replica unreachable \
           (partition?)")
    (replica_nodes t uid);
  (match old_owner with
  | Some o when not (Ids.Node.equal o node) ->
      if Store.addr_of_uid (store t o) uid <> None then
        invalid_arg "Protocol.adopt_ownership: recorded owner still has a copy";
      (* One exchange rewires the old owner's record towards us — only
         meaningful (and only possible) while that node is up. *)
      if not (Net.is_down t.net o) then begin
        Net.record_rpc t.net ~src:node ~dst:o ~kind:Net.Token_request ();
        Net.record_rpc t.net ~src:o ~dst:node ~kind:Net.Token_grant ();
        match Directory.find (directory t o) uid with
        | Some r ->
            r.Directory.is_owner <- false;
            r.Directory.prob_owner <- node;
            Directory.touch (directory t o)
        | None -> ()
      end
  | Some _ | None -> ());
  let r = Directory.ensure (directory t node) ~uid ~prob_owner:node in
  r.Directory.is_owner <- true;
  r.Directory.prob_owner <- node;
  Directory.touch (directory t node);
  note_owner t ~uid ~node;
  (* Adopt with a READ state: other replicas may legitimately hold read
     tokens, and an owner may be in the downgraded-read state (§2.2).
     The adopted copy is the best surviving version of the data. *)
  if r.Directory.state = Directory.Invalid then r.Directory.state <- Directory.Read;
  (* The copyset died with the old owner's volatile memory; rebuild it
     from the replicas that survive (one query per live node), or a
     later write grant would skip invalidating their read tokens.
     Nodes that are down re-register themselves when they recover. *)
  let cs_was = Ids.Node_set.cardinal r.Directory.copyset in
  r.Directory.copyset <-
    List.fold_left
      (fun acc n ->
        if Ids.Node.equal n node || Net.is_down t.net n then acc
        else begin
          Net.record_rpc t.net ~src:node ~dst:n ~kind:Net.Token_request ();
          Ids.Node_set.add n acc
        end)
      Ids.Node_set.empty (replica_nodes t uid);
  copyset_changed t ~was:cs_was
    ~now:(Ids.Node_set.cardinal r.Directory.copyset);
  ev t (Trace_event.Owner_adopted { node; uid });
  trace t "dsm" "ownership of u%d adopted by N%d" uid node

let exiting_ownerptrs t ~node ~bunch =
  let s = store t node in
  let d = directory t node in
  List.filter_map
    (fun (_, obj) ->
      match Directory.find d obj.Heap_obj.uid with
      | Some r when not r.Directory.is_owner ->
          Some (obj.Heap_obj.uid, r.Directory.prob_owner)
      | Some _ | None -> None)
    (Store.objects_of_bunch s bunch)
  |> List.sort_uniq compare
