(* Property-based tests (QCheck, run under alcotest).

   The heavyweight property is the collector's central safety claim: for
   ANY sequence of mutator operations, collections, cleaner deliveries and
   message-loss windows, no object reachable from any root is ever lost,
   and pointer equality is stable under GC moves. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Value = Bmx_memory.Value
module Net = Bmx_netsim.Net

(* ------------------------------------------------------------ generators *)

(* A program is a list of abstract ops interpreted over a small cluster. *)
type op =
  | Op_read of int * int (* node, object index *)
  | Op_write of int * int * int (* node, object, data *)
  | Op_relink of int * int * int * int (* node, src, field, target *)
  | Op_unlink of int * int * int (* node, src, field *)
  | Op_root_add of int * int
  | Op_root_drop of int * int
  | Op_bgc of int * int (* node, bunch index *)
  | Op_ggc of int
  | Op_drain
  | Op_drop_window (* lose all stub-table traffic for a moment *)
  | Op_txn of int * int * int * bool (* node, src, dst, commit? *)
  | Op_fetch of int * int (* token-free demand fetch *)
  | Op_reclaim of int * int (* from-space reuse at (node, bunch) *)

let nodes_count = 3
let bunches_count = 2
let objects_count = 12
let out_degree = 2

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun n i -> Op_read (n, i)) (int_bound (nodes_count - 1)) (int_bound (objects_count - 1)));
        (3, map3 (fun n i v -> Op_write (n, i, v)) (int_bound (nodes_count - 1)) (int_bound (objects_count - 1)) (int_bound 999));
        ( 3,
          map3
            (fun n s t -> Op_relink (n, s, t mod out_degree, t))
            (int_bound (nodes_count - 1))
            (int_bound (objects_count - 1))
            (int_bound (objects_count - 1)) );
        ( 1,
          map3
            (fun n s f -> Op_unlink (n, s, f mod out_degree))
            (int_bound (nodes_count - 1))
            (int_bound (objects_count - 1))
            (int_bound 7) );
        (1, map2 (fun n i -> Op_root_add (n, i)) (int_bound (nodes_count - 1)) (int_bound (objects_count - 1)));
        (2, map2 (fun n i -> Op_root_drop (n, i)) (int_bound (nodes_count - 1)) (int_bound (objects_count - 1)));
        (2, map2 (fun n b -> Op_bgc (n, b)) (int_bound (nodes_count - 1)) (int_bound (bunches_count - 1)));
        (1, map (fun n -> Op_ggc n) (int_bound (nodes_count - 1)));
        (2, return Op_drain);
        (1, return Op_drop_window);
        ( 2,
          map3
            (fun n s (t, commit) -> Op_txn (n, s, t, commit))
            (int_bound (nodes_count - 1))
            (int_bound (objects_count - 1))
            (pair (int_bound (objects_count - 1)) bool) );
        (1, map2 (fun n i -> Op_fetch (n, i)) (int_bound (nodes_count - 1)) (int_bound (objects_count - 1)));
        (1, map2 (fun n b -> Op_reclaim (n, b)) (int_bound (nodes_count - 1)) (int_bound (bunches_count - 1)));
      ])

let pp_op = function
  | Op_read (n, i) -> Printf.sprintf "Read(%d,%d)" n i
  | Op_write (n, i, v) -> Printf.sprintf "Write(%d,%d,%d)" n i v
  | Op_relink (n, s, f, t) -> Printf.sprintf "Relink(%d,%d.f%d=%d)" n s f t
  | Op_unlink (n, s, f) -> Printf.sprintf "Unlink(%d,%d.f%d)" n s f
  | Op_root_add (n, i) -> Printf.sprintf "RootAdd(%d,%d)" n i
  | Op_root_drop (n, i) -> Printf.sprintf "RootDrop(%d,%d)" n i
  | Op_bgc (n, b) -> Printf.sprintf "Bgc(%d,%d)" n b
  | Op_ggc n -> Printf.sprintf "Ggc(%d)" n
  | Op_drain -> "Drain"
  | Op_drop_window -> "DropWindow"
  | Op_txn (n, s, t, c) -> Printf.sprintf "Txn(%d,%d,%d,%b)" n s t c
  | Op_fetch (n, i) -> Printf.sprintf "Fetch(%d,%d)" n i
  | Op_reclaim (n, b) -> Printf.sprintf "Reclaim(%d,%d)" n b

let arb_program =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map pp_op l))
    QCheck.Gen.(list_size (int_range 10 60) gen_op)

(* ------------------------------------------------------------ interpreter *)

type world = {
  cluster : Cluster.t;
  bunches : int array;
  handles : Addr.t array array; (* per node, per object: current handle *)
  rooted : bool array array; (* per node, per object *)
  rng : Rng.t;
}

let build_world ?mode ?(nodes = nodes_count) ?(objects = objects_count) seed =
  let c = Cluster.create ~nodes ?mode ~seed () in
  let bunches = Array.init bunches_count (fun i -> Cluster.new_bunch c ~home:(i mod nodes)) in
  let rng = Rng.make (seed + 1) in
  let objs =
    Bmx_workload.Graphgen.random_graph c ~rng ~node:0
      ~bunches:(Array.to_list bunches) ~objects ~out_degree
      ~cross_bunch_prob:0.4
  in
  let handles = Array.init nodes (fun _ -> Array.copy objs) in
  let rooted = Array.init nodes (fun _ -> Array.make objects false) in
  (* Root a few objects at node 0 so something is live. *)
  List.iter
    (fun i ->
      Cluster.add_root c ~node:0 objs.(i);
      rooted.(0).(i) <- true)
    [ 0; 3; 7 ];
  { cluster = c; bunches; handles; rooted; rng }

(* A mutator can only name objects reachable from some root; the handle
   table must not resurrect unreachable ones. *)
let legal w addr =
  match Protocol.uid_of_addr (Cluster.proto w.cluster) addr with
  | Some uid -> Ids.Uid_set.mem uid (Bmx.Audit.union_reachable w.cluster)
  | None -> false

let exec_op w op =
  let c = w.cluster in
  (* Worlds may be larger or smaller than the generator's constants:
     indices wrap. *)
  let nn = Array.length w.handles in
  let oo = Array.length w.handles.(0) in
  let wrap_n n = n mod nn and wrap_o i = i mod oo in
  let op =
    match op with
    | Op_read (n, i) -> Op_read (wrap_n n, wrap_o i)
    | Op_write (n, i, v) -> Op_write (wrap_n n, wrap_o i, v)
    | Op_relink (n, s, f, t) -> Op_relink (wrap_n n, wrap_o s, f, wrap_o t)
    | Op_unlink (n, s, f) -> Op_unlink (wrap_n n, wrap_o s, f)
    | Op_root_add (n, i) -> Op_root_add (wrap_n n, wrap_o i)
    | Op_root_drop (n, i) -> Op_root_drop (wrap_n n, wrap_o i)
    | Op_bgc (n, b) -> Op_bgc (wrap_n n, b)
    | Op_ggc n -> Op_ggc (wrap_n n)
    | Op_txn (n, s, t, c') -> Op_txn (wrap_n n, wrap_o s, wrap_o t, c')
    | Op_fetch (n, i) -> Op_fetch (wrap_n n, wrap_o i)
    | Op_reclaim (n, b) -> Op_reclaim (wrap_n n, b)
    | (Op_drain | Op_drop_window) as o -> o
  in
  let on_object n i k = if legal w w.handles.(n).(i) then k () in
  try
    match op with
    | Op_read (n, i) ->
        on_object n i (fun () ->
            let a = Cluster.acquire_read c ~node:n w.handles.(n).(i) in
            w.handles.(n).(i) <- a;
            ignore (Cluster.read c ~node:n a out_degree);
            Cluster.release c ~node:n a)
    | Op_write (n, i, v) ->
        on_object n i (fun () ->
            let a = Cluster.acquire_write c ~node:n w.handles.(n).(i) in
            w.handles.(n).(i) <- a;
            Cluster.write c ~node:n a out_degree (Value.Data v);
            Cluster.release c ~node:n a)
    | Op_relink (n, s, f, t) ->
        on_object n s (fun () ->
            let target = w.handles.(n).(t) in
            if legal w target then begin
              let a = Cluster.acquire_write c ~node:n w.handles.(n).(s) in
              w.handles.(n).(s) <- a;
              Cluster.write c ~node:n a f (Value.Ref target);
              Cluster.release c ~node:n a
            end)
    | Op_unlink (n, s, f) ->
        on_object n s (fun () ->
            let a = Cluster.acquire_write c ~node:n w.handles.(n).(s) in
            w.handles.(n).(s) <- a;
            Cluster.write c ~node:n a f Value.nil;
            Cluster.release c ~node:n a)
    | Op_root_add (n, i) ->
        on_object n i (fun () ->
            if not w.rooted.(n).(i) then begin
              let a = Cluster.acquire_read c ~node:n w.handles.(n).(i) in
              w.handles.(n).(i) <- a;
              Cluster.release c ~node:n a;
              Cluster.add_root c ~node:n a;
              w.rooted.(n).(i) <- true
            end)
    | Op_root_drop (n, i) ->
        if w.rooted.(n).(i) then begin
          Cluster.remove_root c ~node:n w.handles.(n).(i);
          w.rooted.(n).(i) <- false
        end
    | Op_bgc (n, b) -> ignore (Cluster.bgc c ~node:n ~bunch:w.bunches.(b))
    | Op_ggc n -> ignore (Cluster.ggc c ~node:n)
    | Op_drain -> ignore (Cluster.drain c)
    | Op_drop_window ->
        Net.set_fault (Cluster.net c) ~kind:Net.Stub_table ~drop:1.0 ~dup:0.0
          ~rng:w.rng;
        ignore (Cluster.drain c);
        Net.clear_faults (Cluster.net c)
    | Op_txn (n, s, t, commit) ->
        on_object n s (fun () ->
            if legal w w.handles.(n).(t) then begin
              let txn = Bmx_txn.Txn.begin_ c ~node:n in
              (try
                 Bmx_txn.Txn.write txn w.handles.(n).(s) out_degree (Value.Data 1);
                 ignore (Bmx_txn.Txn.read txn w.handles.(n).(t) out_degree);
                 if commit then Bmx_txn.Txn.commit txn else Bmx_txn.Txn.abort txn
               with Bmx_txn.Txn.Conflict _ -> Bmx_txn.Txn.abort txn)
            end)
    | Op_fetch (n, i) ->
        on_object n i (fun () ->
            let a = Cluster.demand_fetch c ~node:n w.handles.(n).(i) in
            w.handles.(n).(i) <- a;
            ignore (Cluster.read c ~weak:true ~node:n a out_degree))
    | Op_reclaim (n, b) ->
        (* From-space reuse rewrites every pointer the node holds (stack
           and heap) before dropping the doomed forwarders (§4.5).  The
           handle array models mutator registers, so re-sync it by stable
           identity after the call. *)
        let proto = Cluster.proto c in
        let uids = Array.map (Protocol.uid_of_addr proto) w.handles.(n) in
        ignore (Cluster.reclaim_from_space c ~node:n ~bunch:w.bunches.(b));
        let store = Protocol.store proto n in
        Array.iteri
          (fun i u ->
            match u with
            | Some uid -> (
                match Bmx_memory.Store.addr_of_uid store uid with
                | Some a -> w.handles.(n).(i) <- a
                | None -> ())
            | None -> ())
          uids
  with Failure _ ->
    (* Token conflicts etc. are legal outcomes of random programs; the
       properties below are about heap safety, not about programs being
       well-synchronized. *)
    ()

(* ------------------------------------------------------------- properties *)

(* Any handle a mutator still roots must dereference to the right object. *)
let handles_resolve w =
  let ok = ref true in
  Array.iteri
    (fun n per_node ->
      Array.iteri
        (fun i addr ->
          if w.rooted.(n).(i) then
            match
              Bmx_memory.Store.resolve (Protocol.store (Cluster.proto w.cluster) n) addr
            with
            | Some _ -> ()
            | None -> ok := false)
        per_node)
    w.handles;
  !ok

let prop_safety =
  QCheck.Test.make ~name:"no reachable object is ever lost" ~count:100 arb_program
    (fun program ->
      let w = build_world 42 in
      List.iter
        (fun op ->
          exec_op w op;
          (match Bmx.Audit.check_safety w.cluster with
          | Ok () -> ()
          | Error msg -> QCheck.Test.fail_reportf "safety broken: %s" msg);
          match Bmx.Audit.check_tokens w.cluster with
          | Ok () -> ()
          | Error msg -> QCheck.Test.fail_reportf "token discipline broken: %s" msg)
        program;
      ignore (Cluster.drain w.cluster);
      (match Bmx.Audit.check_safety w.cluster with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "safety broken at end: %s" msg);
      handles_resolve w)

let prop_safety_centralized =
  QCheck.Test.make
    ~name:"no reachable object is ever lost (centralized copy-sets)" ~count:50
    arb_program (fun program ->
      let w = build_world ~mode:Protocol.Centralized 42 in
      List.iter (exec_op w) program;
      ignore (Cluster.drain w.cluster);
      (match Bmx.Audit.check_safety w.cluster with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "safety broken: %s" msg);
      handles_resolve w)

let prop_safety_large_world =
  QCheck.Test.make ~name:"no reachable object is ever lost (5 nodes, 24 objects)"
    ~count:25 arb_program (fun program ->
      let w = build_world ~nodes:5 ~objects:24 41 in
      List.iter
        (fun op ->
          exec_op w op;
          match Bmx.Audit.check_safety w.cluster with
          | Ok () -> ()
          | Error msg -> QCheck.Test.fail_reportf "safety broken: %s" msg)
        program;
      ignore (Cluster.drain w.cluster);
      Result.is_ok (Bmx.Audit.check_safety w.cluster)
      && Result.is_ok (Bmx.Audit.check_tokens w.cluster))

let prop_collection_converges =
  QCheck.Test.make ~name:"repeated rounds stop reclaiming (fixpoint)" ~count:25
    arb_program (fun program ->
      let w = build_world 7 in
      List.iter (exec_op w) program;
      ignore (Cluster.drain w.cluster);
      ignore (Cluster.collect_until_quiescent w.cluster ~max_rounds:50 ());
      (* One more full round must reclaim nothing. *)
      Cluster.gc_round w.cluster = 0)

let prop_gc_never_acquires =
  QCheck.Test.make ~name:"collector acquires no token on any schedule" ~count:40
    arb_program (fun program ->
      let w = build_world 13 in
      List.iter (exec_op w) program;
      Stats.get (Cluster.stats w.cluster) "dsm.gc.acquire_read"
      + Stats.get (Cluster.stats w.cluster) "dsm.gc.acquire_write"
      = 0)

let prop_ptr_eq_stable_under_gc =
  QCheck.Test.make ~name:"ptr_eq is stable under collection" ~count:40 arb_program
    (fun program ->
      let w = build_world 99 in
      let c = w.cluster in
      let a = w.handles.(0).(0) in
      List.iter (exec_op w) program;
      ignore (Cluster.drain c);
      (* Handle 0 is rooted at node 0 from setup unless a drop removed it;
         re-fetch its current address and compare with the original. *)
      if w.rooted.(0).(0) then
        Cluster.ptr_eq c ~node:0 a w.handles.(0).(0)
      else true)

(* The reference-map bit arrays (§8) must always agree with the pointer
   fields of the objects they describe, whatever the mutators and
   collectors did. *)
let ref_maps_consistent w =
  let proto = Cluster.proto w.cluster in
  let ok = ref true in
  List.iter
    (fun node ->
      let store = Protocol.store proto node in
      Bmx_memory.Store.iter store (fun addr cell ->
          match cell with
          | Bmx_memory.Store.Forwarder _ -> ()
          | Bmx_memory.Store.Object obj -> (
              match Bmx_memory.Store.segment_at store addr with
              | None -> ()
              | Some seg ->
                  if not (Bmx_util.Bitmap.get seg.Bmx_memory.Segment.object_map addr)
                  then ok := false;
                  Array.iteri
                    (fun i v ->
                      let field =
                        Addr.add addr
                          (Bmx_memory.Heap_obj.header_bytes + (i * Addr.word))
                      in
                      if Bmx_memory.Segment.contains seg field then begin
                        let bit =
                          Bmx_util.Bitmap.get seg.Bmx_memory.Segment.ref_map field
                        in
                        if bit <> Bmx_memory.Value.is_pointer v then ok := false
                      end)
                    (Bmx_memory.Heap_obj.fields_copy obj))))
    (Cluster.nodes w.cluster);
  !ok

let prop_refmaps =
  QCheck.Test.make ~name:"object/reference maps track the heap (§8)" ~count:40
    arb_program (fun program ->
      let w = build_world 77 in
      List.iter (exec_op w) program;
      ignore (Cluster.drain w.cluster);
      ref_maps_consistent w)

(* Pure data-structure properties. *)

let prop_bitmap_model =
  QCheck.Test.make ~name:"bitmap behaves like a set of words" ~count:200
    QCheck.(list (pair (int_bound 255) bool))
    (fun ops ->
      let range = Addr.Range.make ~lo:0 ~size:1024 in
      let bm = Bitmap.create ~range in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (w, add) ->
          let addr = w * Addr.word in
          if add then begin
            Bitmap.set bm addr;
            Hashtbl.replace model addr ()
          end
          else begin
            Bitmap.clear bm addr;
            Hashtbl.remove model addr
          end)
        ops;
      Hashtbl.length model = Bitmap.cardinal bm
      && Hashtbl.fold (fun a () acc -> acc && Bitmap.get bm a) model true)

let prop_rvm_recover_equals_commit =
  QCheck.Test.make ~name:"rvm: recover reproduces committed state" ~count:100
    QCheck.(list (pair (int_bound 31) (option (int_bound 1000))))
    (fun ops ->
      let module Rvm = Bmx_rvm.Rvm in
      let r = Rvm.create ~copy:Fun.id () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let addr = (k + 1) * 4 in
          Rvm.begin_tx r;
          (match v with
          | Some v ->
              Rvm.set r addr v;
              Hashtbl.replace model addr v
          | None ->
              Rvm.delete r addr;
              Hashtbl.remove model addr);
          Rvm.commit r)
        ops;
      Rvm.crash r;
      ignore (Rvm.recover r);
      Hashtbl.length model = Rvm.cardinal r
      && Hashtbl.fold (fun a v acc -> acc && Rvm.get r a = Some v) model true)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng: int stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let g = Rng.make seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Rng.int g bound in
        if x < 0 || x >= bound then ok := false
      done;
      !ok)

(* Pinned randomness: deterministic CI runs; set QCHECK_SEED to explore. *)
let pinned_to_alcotest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260704 |]) t

let () =
  Alcotest.run "properties"
    [
      ( "collector",
        List.map pinned_to_alcotest
          [
            prop_safety;
            prop_safety_centralized;
            prop_safety_large_world;
            prop_collection_converges;
            prop_gc_never_acquires;
            prop_ptr_eq_stable_under_gc;
            prop_refmaps;
          ] );
      ( "substrates",
        List.map pinned_to_alcotest
          [ prop_bitmap_model; prop_rvm_recover_equals_commit; prop_rng_int_bounds ]
      );
    ]
