lib/core/ggc.ml: Bmx_dsm Bmx_memory Collect Gc_state
