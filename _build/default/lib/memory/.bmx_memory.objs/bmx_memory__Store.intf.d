lib/memory/store.mli: Bmx_util Format Heap_obj Registry Segment Value
