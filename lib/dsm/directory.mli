(** Per-node DSM bookkeeping: token state, ownership, copy-sets,
    ownerPtrs (§2.2).

    For every object a node has heard of, the node keeps a token record.
    The {e owner} of an object is the node currently holding the write
    token, or the node that last held it.  A node that is not the owner
    keeps an {e ownerPtr} — a forwarding pointer indicating (possibly
    transitively) where the current owner is, per Li & Hudak's dynamic
    distributed manager.  The {e copy-set} lists the nodes to which this
    node has granted a read token; in the distributed mode the full replica
    set is the tree of copy-sets rooted at the owner.

    The {e entering-ownerPtr} table records, per object, the remote nodes
    whose ownerPtr points here; these are GC roots for the local BGC (§4.1)
    and are trimmed by the scion cleaner (§6). *)

type token_state =
  | Invalid  (** no token; a cached copy, if any, is inconsistent *)
  | Read  (** consistent for reading *)
  | Write  (** exclusive: no other consistent copy exists anywhere *)

val token_state_to_string : token_state -> string

type record = {
  uid : Bmx_util.Ids.Uid.t;
  mutable state : token_state;
  mutable held : bool;  (** between acquire and release *)
  mutable is_owner : bool;
  mutable prob_owner : Bmx_util.Ids.Node.t;
      (** exiting ownerPtr; only meaningful when [not is_owner] *)
  mutable copyset : Bmx_util.Ids.Node_set.t;
}

type t

val create : node:Bmx_util.Ids.Node.t -> t
val node : t -> Bmx_util.Ids.Node.t

val mut_version : t -> int
(** Mutation epoch: advances on any change that can alter what a local
    collection computes (records appearing/disappearing, ownership
    moves, entering membership).  Token-state churn does not advance
    it.  The economical BGC compares this against the value seen after
    its previous run to decide whether collecting again can possibly
    find new garbage. *)

val touch : t -> unit
(** Advance {!mut_version}.  The protocol calls this when it rewrites
    [is_owner]/[prob_owner] on a record in place. *)

val find : t -> Bmx_util.Ids.Uid.t -> record option

val ensure :
  t -> uid:Bmx_util.Ids.Uid.t -> prob_owner:Bmx_util.Ids.Node.t -> record
(** The record for [uid], created as a non-owner [Invalid] entry pointing
    at [prob_owner] if absent. *)

val register_new_object : t -> uid:Bmx_util.Ids.Uid.t -> record
(** Record for a freshly allocated object: this node is owner, holds the
    write token. *)

val forget : t -> Bmx_util.Ids.Uid.t -> unit
(** Drop the record and entering entries (replica reclaimed by BGC). *)

val add_entering :
  t -> seq:int -> uid:Bmx_util.Ids.Uid.t -> from:Bmx_util.Ids.Node.t -> unit
(** [seq] is the logical time of the registration on the [from]->here
    message stream (see {!Bmx_netsim.Net.current_seq}); the scion cleaner
    refuses to delete an entry on the strength of a reachability table
    older than its registration.  An existing entry's seq only moves
    forward.  Use 0 for "removable by any table". *)

val remove_entering : t -> uid:Bmx_util.Ids.Uid.t -> from:Bmx_util.Ids.Node.t -> unit

val entering_registration_seq :
  t -> uid:Bmx_util.Ids.Uid.t -> from:Bmx_util.Ids.Node.t -> int
(** The registration time of the entry (0 if absent or unstamped). *)

val entering : t -> Bmx_util.Ids.Uid.t -> Bmx_util.Ids.Node_set.t

val entering_uids : t -> Bmx_util.Ids.Uid.t list
(** Objects with at least one entering ownerPtr (local GC roots). *)

val is_entering_from :
  t -> uid:Bmx_util.Ids.Uid.t -> from:Bmx_util.Ids.Node.t -> bool
(** O(1): does [from] hold an entering entry for [uid]? *)

val entering_uids_from :
  t -> from:Bmx_util.Ids.Node.t -> Bmx_util.Ids.Uid.t list
(** Objects with an entering entry originating at [from], sorted.  The
    scion cleaner reconciles exactly one sender per table message; this
    keeps that walk proportional to the sender's entries, not the
    node's whole entering set. *)

val iter : t -> (record -> unit) -> unit
val records : t -> record list
val pp_record : Format.formatter -> record -> unit
