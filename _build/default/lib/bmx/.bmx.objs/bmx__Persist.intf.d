lib/bmx/persist.mli: Bmx_memory Bmx_rvm Bmx_util Cluster
