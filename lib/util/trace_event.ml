type actor = App | Gc
type tok = Read | Write

type t =
  | Acquire_start of {
      actor : actor;
      node : Ids.Node.t;
      uid : Ids.Uid.t;
      tok : tok;
    }
  | Acquire_done of {
      actor : actor;
      node : Ids.Node.t;
      uid : Ids.Uid.t;
      tok : tok;
      addr_valid : bool;
    }
  | Release of { node : Ids.Node.t; uid : Ids.Uid.t }
  | Grant_sent of {
      granter : Ids.Node.t;
      requester : Ids.Node.t;
      uid : Ids.Uid.t;
      tok : tok;
      updates : int;
    }
  | Hook_ssp of {
      granter : Ids.Node.t;
      requester : Ids.Node.t;
      uid : Ids.Uid.t;
    }
  | Invalidate of { src : Ids.Node.t; dst : Ids.Node.t; uid : Ids.Uid.t }
  | Updates_applied of { node : Ids.Node.t; uids : Ids.Uid.t list }
  | Forward_due of {
      node : Ids.Node.t;
      uid : Ids.Uid.t;
      peers : Ids.Node.t list;
    }
  | Copyset_forward of { src : Ids.Node.t; dst : Ids.Node.t; uid : Ids.Uid.t }
  | Gc_begin of { node : Ids.Node.t; group : bool; bunches : Ids.Bunch.t list }
  | Gc_end of { node : Ids.Node.t; group : bool; live : int; reclaimed : int }
  | Msg_sent of {
      src : Ids.Node.t;
      dst : Ids.Node.t;
      kind : string;
      seq : int;
      rel : bool;
    }
  | Msg_delivered of {
      src : Ids.Node.t;
      dst : Ids.Node.t;
      kind : string;
      seq : int;
      rel : bool;
    }
  | Msg_retransmit of {
      src : Ids.Node.t;
      dst : Ids.Node.t;
      kind : string;
      seq : int;
      attempt : int;
    }
  | Msg_suppressed of {
      src : Ids.Node.t;
      dst : Ids.Node.t;
      kind : string;
      seq : int;
    }
  | Msg_buffered of {
      src : Ids.Node.t;
      dst : Ids.Node.t;
      kind : string;
      seq : int;
    }
  | Rpc of { src : Ids.Node.t; dst : Ids.Node.t; kind : string; seq : int }
  | Crash of { node : Ids.Node.t }
  | Restart of { node : Ids.Node.t }
  | Link_cut of { src : Ids.Node.t; dst : Ids.Node.t }
  | Link_heal of { src : Ids.Node.t; dst : Ids.Node.t }
  | Suspect of { src : Ids.Node.t; dst : Ids.Node.t; on : bool }
  | Owner_adopted of { node : Ids.Node.t; uid : Ids.Uid.t }
  | Tables_processed of {
      at : Ids.Node.t;
      sender : Ids.Node.t;
      bunch : Ids.Bunch.t;
      seq : int;
    }
  | Disk_fault of { node : Ids.Node.t; fault : string }
  | Rvm_recover of { node : Ids.Node.t; dropped : int; lost : int }
  | Bunch_verified of { node : Ids.Node.t; missing : int }
  | Shard_alloc of { shard : int; node : Ids.Node.t }
  | Shard_adopted of { shard : int; node : Ids.Node.t }
  | Read_obs of {
      actor : actor;
      node : Ids.Node.t;
      uid : Ids.Uid.t;
      version : int;
      covered : bool;
    }
  | Write_obs of {
      actor : actor;
      node : Ids.Node.t;
      uid : Ids.Uid.t;
      version : int;
      covered : bool;
    }
  | Gc_phase of { node : Ids.Node.t; phase : string; us : int }

type log = {
  mutable log_enabled : bool;
  mutable rev : (int * t) list;
  mutable count : int;
  capacity : int;
  mutable over : bool;
  mutable clock : unit -> int;
  mutable last_ts : int;
  mutable taps : (int -> t -> unit) list;
}

let quantum = 1000

let create_log ?(capacity = 1_000_000) () =
  if capacity <= 0 then invalid_arg "Trace_event.create_log: capacity";
  {
    log_enabled = false;
    rev = [];
    count = 0;
    capacity;
    over = false;
    clock = (fun () -> 0);
    last_ts = 0;
    taps = [];
  }

let enabled l = l.log_enabled
let set_enabled l b = l.log_enabled <- b
let set_clock l f = l.clock <- f

(* Taps see every recorded event (timestamped) as it happens — the
   continuous-observability layer (timeseries sampler, flight recorder)
   hangs off here rather than polling the log. *)
let add_tap l f = l.taps <- l.taps @ [ f ]

let record l e =
  if l.log_enabled then begin
    if l.count >= l.capacity then l.over <- true
    else begin
      (* Virtual-microstep timestamp: the network clock anchors it, and
         every recorded event advances at least one µstep so intervals
         between events in the same clock tick still have extent. *)
      let ts = Stdlib.max (l.last_ts + 1) (l.clock () * quantum) in
      l.last_ts <- ts;
      l.rev <- (ts, e) :: l.rev;
      l.count <- l.count + 1;
      match l.taps with
      | [] -> ()
      | taps -> List.iter (fun f -> f ts e) taps
    end
  end

let events l = List.rev_map snd l.rev
let timed_events l = List.rev l.rev
let length l = l.count
let overflowed l = l.over

let clear l =
  l.rev <- [];
  l.count <- 0;
  l.over <- false;
  l.last_ts <- 0

(* --------------------------------------------------------------- text *)

let actor_str = function App -> "app" | Gc -> "gc"
let tok_str = function Read -> "r" | Write -> "w"
let bool_str b = if b then "1" else "0"

(* Int lists print as "-" when empty, else comma-separated. *)
let ints_str = function
  | [] -> "-"
  | l -> String.concat "," (List.map string_of_int l)

let to_line = function
  | Acquire_start { actor; node; uid; tok } ->
      Printf.sprintf "acquire_start %s %d %d %s" (actor_str actor) node uid
        (tok_str tok)
  | Acquire_done { actor; node; uid; tok; addr_valid } ->
      Printf.sprintf "acquire_done %s %d %d %s %s" (actor_str actor) node uid
        (tok_str tok) (bool_str addr_valid)
  | Release { node; uid } -> Printf.sprintf "release %d %d" node uid
  | Grant_sent { granter; requester; uid; tok; updates } ->
      Printf.sprintf "grant_sent %d %d %d %s %d" granter requester uid
        (tok_str tok) updates
  | Hook_ssp { granter; requester; uid } ->
      Printf.sprintf "hook_ssp %d %d %d" granter requester uid
  | Invalidate { src; dst; uid } ->
      Printf.sprintf "invalidate %d %d %d" src dst uid
  | Updates_applied { node; uids } ->
      Printf.sprintf "updates_applied %d %s" node (ints_str uids)
  | Forward_due { node; uid; peers } ->
      Printf.sprintf "forward_due %d %d %s" node uid (ints_str peers)
  | Copyset_forward { src; dst; uid } ->
      Printf.sprintf "copyset_forward %d %d %d" src dst uid
  | Gc_begin { node; group; bunches } ->
      Printf.sprintf "gc_begin %d %s %s" node (bool_str group) (ints_str bunches)
  | Gc_end { node; group; live; reclaimed } ->
      Printf.sprintf "gc_end %d %s %d %d" node (bool_str group) live reclaimed
  | Msg_sent { src; dst; kind; seq; rel } ->
      Printf.sprintf "msg_sent %d %d %s %d %s" src dst kind seq (bool_str rel)
  | Msg_delivered { src; dst; kind; seq; rel } ->
      Printf.sprintf "msg_delivered %d %d %s %d %s" src dst kind seq
        (bool_str rel)
  | Msg_retransmit { src; dst; kind; seq; attempt } ->
      Printf.sprintf "msg_retransmit %d %d %s %d %d" src dst kind seq attempt
  | Msg_suppressed { src; dst; kind; seq } ->
      Printf.sprintf "msg_suppressed %d %d %s %d" src dst kind seq
  | Msg_buffered { src; dst; kind; seq } ->
      Printf.sprintf "msg_buffered %d %d %s %d" src dst kind seq
  | Rpc { src; dst; kind; seq } ->
      Printf.sprintf "rpc %d %d %s %d" src dst kind seq
  | Crash { node } -> Printf.sprintf "crash %d" node
  | Restart { node } -> Printf.sprintf "restart %d" node
  | Link_cut { src; dst } -> Printf.sprintf "link_cut %d %d" src dst
  | Link_heal { src; dst } -> Printf.sprintf "link_heal %d %d" src dst
  | Suspect { src; dst; on } ->
      Printf.sprintf "suspect %d %d %s" src dst (bool_str on)
  | Owner_adopted { node; uid } -> Printf.sprintf "owner_adopted %d %d" node uid
  | Tables_processed { at; sender; bunch; seq } ->
      Printf.sprintf "tables_processed %d %d %d %d" at sender bunch seq
  | Disk_fault { node; fault } -> Printf.sprintf "disk_fault %d %s" node fault
  | Rvm_recover { node; dropped; lost } ->
      Printf.sprintf "rvm_recover %d %d %d" node dropped lost
  | Shard_alloc { shard; node } -> Printf.sprintf "shard_alloc %d %d" shard node
  | Shard_adopted { shard; node } ->
      Printf.sprintf "shard_adopted %d %d" shard node
  | Bunch_verified { node; missing } ->
      Printf.sprintf "bunch_verified %d %d" node missing
  | Read_obs { actor; node; uid; version; covered } ->
      Printf.sprintf "read_obs %s %d %d %d %s" (actor_str actor) node uid
        version (bool_str covered)
  | Write_obs { actor; node; uid; version; covered } ->
      Printf.sprintf "write_obs %s %d %d %d %s" (actor_str actor) node uid
        version (bool_str covered)
  | Gc_phase { node; phase; us } ->
      Printf.sprintf "gc_phase %d %s %d" node phase us

exception Parse of string

let of_line line =
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt in
  let int s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> fail "bad int %S" s
  in
  let actor = function
    | "app" -> App
    | "gc" -> Gc
    | s -> fail "bad actor %S" s
  in
  let tok = function "r" -> Read | "w" -> Write | s -> fail "bad tok %S" s in
  let bool = function "1" -> true | "0" -> false | s -> fail "bad bool %S" s in
  let ints = function
    | "-" -> []
    | s -> List.map int (String.split_on_char ',' s)
  in
  try
    match
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    with
    | [ "acquire_start"; a; n; u; k ] ->
        Ok (Acquire_start { actor = actor a; node = int n; uid = int u; tok = tok k })
    | [ "acquire_done"; a; n; u; k; v ] ->
        Ok
          (Acquire_done
             {
               actor = actor a;
               node = int n;
               uid = int u;
               tok = tok k;
               addr_valid = bool v;
             })
    | [ "release"; n; u ] -> Ok (Release { node = int n; uid = int u })
    | [ "grant_sent"; g; r; u; k; c ] ->
        Ok
          (Grant_sent
             {
               granter = int g;
               requester = int r;
               uid = int u;
               tok = tok k;
               updates = int c;
             })
    | [ "hook_ssp"; g; r; u ] ->
        Ok (Hook_ssp { granter = int g; requester = int r; uid = int u })
    | [ "invalidate"; s; d; u ] ->
        Ok (Invalidate { src = int s; dst = int d; uid = int u })
    | [ "updates_applied"; n; us ] ->
        Ok (Updates_applied { node = int n; uids = ints us })
    | [ "forward_due"; n; u; ps ] ->
        Ok (Forward_due { node = int n; uid = int u; peers = ints ps })
    | [ "copyset_forward"; s; d; u ] ->
        Ok (Copyset_forward { src = int s; dst = int d; uid = int u })
    | [ "gc_begin"; n; g; bs ] ->
        Ok (Gc_begin { node = int n; group = bool g; bunches = ints bs })
    | [ "gc_end"; n; g; l; r ] ->
        Ok
          (Gc_end
             { node = int n; group = bool g; live = int l; reclaimed = int r })
    (* Traces written before the reliable-delivery layer lack the [rel]
       field: parse them as unreliable sends/deliveries. *)
    | [ "msg_sent"; s; d; k; q ] ->
        Ok
          (Msg_sent
             { src = int s; dst = int d; kind = k; seq = int q; rel = false })
    | [ "msg_sent"; s; d; k; q; r ] ->
        Ok
          (Msg_sent
             { src = int s; dst = int d; kind = k; seq = int q; rel = bool r })
    | [ "msg_delivered"; s; d; k; q ] ->
        Ok
          (Msg_delivered
             { src = int s; dst = int d; kind = k; seq = int q; rel = false })
    | [ "msg_delivered"; s; d; k; q; r ] ->
        Ok
          (Msg_delivered
             { src = int s; dst = int d; kind = k; seq = int q; rel = bool r })
    | [ "msg_retransmit"; s; d; k; q; a ] ->
        Ok
          (Msg_retransmit
             { src = int s; dst = int d; kind = k; seq = int q; attempt = int a })
    | [ "msg_suppressed"; s; d; k; q ] ->
        Ok (Msg_suppressed { src = int s; dst = int d; kind = k; seq = int q })
    | [ "msg_buffered"; s; d; k; q ] ->
        Ok (Msg_buffered { src = int s; dst = int d; kind = k; seq = int q })
    | [ "rpc"; s; d; k; q ] ->
        Ok (Rpc { src = int s; dst = int d; kind = k; seq = int q })
    | [ "crash"; n ] -> Ok (Crash { node = int n })
    | [ "restart"; n ] -> Ok (Restart { node = int n })
    | [ "link_cut"; s; d ] -> Ok (Link_cut { src = int s; dst = int d })
    | [ "link_heal"; s; d ] -> Ok (Link_heal { src = int s; dst = int d })
    | [ "suspect"; s; d; o ] ->
        Ok (Suspect { src = int s; dst = int d; on = bool o })
    | [ "owner_adopted"; n; u ] ->
        Ok (Owner_adopted { node = int n; uid = int u })
    | [ "tables_processed"; a; s; b; q ] ->
        Ok
          (Tables_processed
             { at = int a; sender = int s; bunch = int b; seq = int q })
    | [ "disk_fault"; n; f ] -> Ok (Disk_fault { node = int n; fault = f })
    | [ "rvm_recover"; n; d; l ] ->
        Ok (Rvm_recover { node = int n; dropped = int d; lost = int l })
    | [ "shard_alloc"; s; n ] ->
        Ok (Shard_alloc { shard = int s; node = int n })
    | [ "shard_adopted"; s; n ] ->
        Ok (Shard_adopted { shard = int s; node = int n })
    | [ "bunch_verified"; n; m ] ->
        Ok (Bunch_verified { node = int n; missing = int m })
    | [ "read_obs"; a; n; u; v; c ] ->
        Ok
          (Read_obs
             {
               actor = actor a;
               node = int n;
               uid = int u;
               version = int v;
               covered = bool c;
             })
    | [ "write_obs"; a; n; u; v; c ] ->
        Ok
          (Write_obs
             {
               actor = actor a;
               node = int n;
               uid = int u;
               version = int v;
               covered = bool c;
             })
    | [ "gc_phase"; n; p; u ] ->
        Ok (Gc_phase { node = int n; phase = p; us = int u })
    | w :: _ -> Error (Printf.sprintf "unknown or malformed event %S" w)
    | [] -> Error "empty line"
  with Parse m -> Error m

let pp ppf e = Format.pp_print_string ppf (to_line e)
