test/test_memory.ml: Addr Alcotest Array Bitmap Bmx_memory Bmx_util List Option
