test/test_cleaner.ml: Alcotest Bmx Bmx_dsm Bmx_gc Bmx_memory Bmx_netsim Bmx_util Ids List Result Rng Stats
