lib/util/addr.ml: Format Hashtbl Int Printf
