(** Mixed read/write/ownership-migration workloads over a cluster.

    The driver models the applications of §1: several nodes repeatedly
    acquire tokens, read and update shared objects, relink references
    (through the write barrier) and occasionally drop or add roots.  It is
    the engine behind experiments E5, E6 and E8. *)

type config = {
  nodes : int;
  bunches : int;
  objects_per_bunch : int;
  out_degree : int;  (** reference fields per object *)
  cross_bunch_prob : float;
  ops : int;  (** mutator operations per run *)
  write_prob : float;  (** probability an op is an update (else a read) *)
  relink_prob : float;  (** probability an update rewrites a pointer field *)
  root_churn_prob : float;  (** probability an op drops / re-adds a root *)
  seed : int;
  mode : Bmx_dsm.Protocol.mode;
  update_policy : Bmx_dsm.Protocol.update_policy;
}

val default : config

type t

val setup : config -> t
(** Build the cluster and its object population; replicate a working set
    on every node; drain. *)

val cluster : t -> Bmx.Cluster.t
val objects : t -> Bmx_util.Addr.t array
val config : t -> config

val run_ops : t -> ?ops:int -> unit -> unit
(** Execute mutator operations (default: [config.ops]). *)

val handle : t -> node:Bmx_util.Ids.Node.t -> int -> Bmx_util.Addr.t
(** The address under which the node's mutator currently knows object
    [i] — its local handle, updated on every acquire. *)

val live_roots : t -> int
(** Roots currently held across all nodes. *)
