open Bmx_util
module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value

type config = {
  levels : int;
  assembly_fanout : int;
  comp_per_base : int;
  atomic_per_comp : int;
  part_bunches : int;
  seed : int;
}

let default =
  {
    levels = 3;
    assembly_fanout = 3;
    comp_per_base = 3;
    atomic_per_comp = 8;
    part_bunches = 3;
    seed = 13;
  }

type t = {
  cluster : Cluster.t;
  cfg : config;
  root_addr : Addr.t;
  assembly_bunch : Ids.Bunch.t;
  part_bunch_list : Ids.Bunch.t list;
  mutable objects : int;
  rng : Rng.t;
}

let cluster t = t.cluster
let root t = t.root_addr
let config t = t.cfg
let size t = t.objects

(* atomic part: [next; build_date].  The atomics of one composite form a
   ring — a connected graph with a cycle, as in OO7's part graphs. *)
let build_part_graph t ~node ~bunch =
  let c = t.cluster in
  let first = Cluster.alloc c ~node ~bunch [| Value.nil; Value.Data 0 |] in
  let rec chain i prev =
    if i = t.cfg.atomic_per_comp then prev
    else begin
      let p = Cluster.alloc c ~node ~bunch [| Value.Ref prev; Value.Data 0 |] in
      chain (i + 1) p
    end
  in
  let last = chain 1 first in
  let first' = Cluster.acquire_write c ~node first in
  Cluster.write c ~node first' 0 (Value.Ref last);
  Cluster.release c ~node first';
  t.objects <- t.objects + t.cfg.atomic_per_comp;
  first'

(* composite part: [atomic_graph; document]. *)
let build_composite t ~node =
  let bunch = List.nth t.part_bunch_list (Rng.int t.rng t.cfg.part_bunches) in
  let atomics = build_part_graph t ~node ~bunch in
  let comp =
    Cluster.alloc t.cluster ~node ~bunch [| Value.Ref atomics; Value.Data 7 |]
  in
  t.objects <- t.objects + 1;
  comp

(* base assembly: [comp_0 .. comp_k-1]; complex assembly: [child_0 ..]. *)
let rec build_assembly t ~node ~depth =
  let c = t.cluster in
  if depth = 0 then begin
    let comps = Array.init t.cfg.comp_per_base (fun _ -> build_composite t ~node) in
    let a =
      Cluster.alloc c ~node ~bunch:t.assembly_bunch
        (Array.map (fun p -> Value.Ref p) comps)
    in
    t.objects <- t.objects + 1;
    a
  end
  else begin
    let kids =
      Array.init t.cfg.assembly_fanout (fun _ ->
          build_assembly t ~node ~depth:(depth - 1))
    in
    let a =
      Cluster.alloc c ~node ~bunch:t.assembly_bunch
        (Array.map (fun k -> Value.Ref k) kids)
    in
    t.objects <- t.objects + 1;
    a
  end

let build c ~node cfg =
  let assembly_bunch = Cluster.new_bunch c ~home:node in
  let part_bunch_list =
    List.init cfg.part_bunches (fun _ -> Cluster.new_bunch c ~home:node)
  in
  let t =
    {
      cluster = c;
      cfg;
      root_addr = Addr.null;
      assembly_bunch;
      part_bunch_list;
      objects = 0;
      rng = Rng.make cfg.seed;
    }
  in
  let root_addr = build_assembly t ~node ~depth:cfg.levels in
  Cluster.add_root c ~node root_addr;
  { t with root_addr }

(* Shared DFS: [on_atomic] gets each atomic part's current address and
   returns its possibly refreshed handle. *)
let traverse t ~node ~on_atomic =
  let c = t.cluster in
  let visited = ref 0 in
  let read_fields addr =
    let a = Cluster.acquire_read c ~node addr in
    let n =
      match Bmx_memory.Store.resolve (Bmx_dsm.Protocol.store (Cluster.proto c) node) a with
      | Some (_, obj) -> Bmx_memory.Heap_obj.num_fields obj
      | None -> 0
    in
    let fields = List.init n (fun i -> Cluster.read c ~node a i) in
    Cluster.release c ~node a;
    fields
  in
  let walk_ring first =
    (* Follow the ring until back at the start. *)
    let rec go addr =
      let addr = on_atomic addr in
      incr visited;
      let a = Cluster.acquire_read c ~node addr in
      let next = Cluster.read c ~node a 0 in
      Cluster.release c ~node a;
      match next with
      | Value.Ref nxt when not (Cluster.ptr_eq c ~node nxt first) -> go nxt
      | _ -> ()
    in
    go first
  in
  let rec walk_assembly addr depth =
    if depth = 0 then
      (* base: fields are composite parts *)
      List.iter
        (fun f ->
          match f with
          | Value.Ref comp -> (
              match read_fields comp with
              | Value.Ref atomic_first :: _ -> walk_ring atomic_first
              | _ -> ())
          | Value.Data _ -> ())
        (read_fields addr)
    else
      List.iter
        (fun f ->
          match f with
          | Value.Ref kid -> walk_assembly kid (depth - 1)
          | Value.Data _ -> ())
        (read_fields addr)
  in
  walk_assembly t.root_addr t.cfg.levels;
  !visited

let t1 t ~node = traverse t ~node ~on_atomic:(fun a -> a)

let t2 t ~node =
  let c = t.cluster in
  traverse t ~node ~on_atomic:(fun addr ->
      let a = Cluster.acquire_write c ~node addr in
      let date =
        match Cluster.read c ~node a 1 with Value.Data d -> d | _ -> 0
      in
      Cluster.write c ~node a 1 (Value.Data (date + 1));
      Cluster.release c ~node a;
      a)

let churn t ~node =
  let c = t.cluster in
  let replaced = ref 0 in
  let rec walk addr depth =
    if depth = 0 then begin
      (* Replace this base assembly's first composite with a fresh one. *)
      let a = Cluster.acquire_write c ~node addr in
      let fresh = build_composite t ~node in
      Cluster.write c ~node a 0 (Value.Ref fresh);
      Cluster.release c ~node a;
      replaced := !replaced + 1 + t.cfg.atomic_per_comp
    end
    else begin
      let a = Cluster.acquire_read c ~node addr in
      let n = t.cfg.assembly_fanout in
      let kids = List.init n (fun i -> Cluster.read c ~node a i) in
      Cluster.release c ~node a;
      List.iter
        (fun f -> match f with Value.Ref kid -> walk kid (depth - 1) | _ -> ())
        kids
    end
  in
  walk t.root_addr t.cfg.levels;
  !replaced
