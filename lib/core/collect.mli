(** The copying-collection engine shared by the BGC and the GGC (§4, §7).

    One invocation collects, at a single node, the local replicas of a set
    of bunches — a singleton for a bunch garbage collection, the
    locality-based group for a group collection ("the algorithm used by
    the GGC is identical to the one used by the BGC, only that it operates
    on a group of bunches", §7).

    The collection is strictly local and acquires no token:

    - roots are the local mutator stacks, the inter- and intra-bunch
      scions, and the entering ownerPtrs (§4.1);
    - locally-owned live objects are copied to a fresh to-space segment,
      leaving a forwarding header in from-space; non-owned live objects —
      possibly inconsistent copies — are merely scanned, which is safe
      because scanning a stale version only makes reachability more
      conservative (§4.2);
    - pointer fields of live local copies are rewritten through local
      forwarder chains without any token (§4.4);
    - the stub tables and exiting-ownerPtr lists are reconstructed (§4.3)
      and broadcast to the scion cleaners concerned (§6);
    - in group mode, inter-bunch scions whose stub lives inside the group
      at this node are {e not} roots, which is what lets intra-group
      cycles of garbage die (§7). *)

type report = {
  r_node : Bmx_util.Ids.Node.t;
  r_bunches : Bmx_util.Ids.Bunch.t list;
  r_roots : int;  (** root addresses examined (flip work, §4.1) *)
  r_live : int;
  r_copied : int;  (** locally-owned objects evacuated *)
  r_scanned_in_place : int;  (** non-owned live objects merely scanned *)
  r_reclaimed : int;  (** dead local replicas removed *)
  r_ref_updates : int;  (** pointer fields rewritten through forwarders *)
  r_new_inter_stubs : int;
  r_new_intra_stubs : int;
  r_exiting : int;
  r_tables_sent : int;  (** reachability messages to scion cleaners *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?economical:bool ->
  Gc_state.t ->
  node:Bmx_util.Ids.Node.t ->
  bunches:Bmx_util.Ids.Bunch.t list ->
  group_mode:bool ->
  ?copy:bool ->
  unit ->
  report
(** Collect the local replicas of [bunches] at [node].  Never calls
    {!Bmx_dsm.Protocol.acquire} — the property experiments E5/E8 verify.

    [copy] (default [true]) selects the paper's copying collection; with
    [copy:false] live objects stay put (mark-and-sweep-style, the §9
    comparator and the §1 fragmentation ablation): dead objects are
    reclaimed and tables regenerated, but spaces are never evacuated, so
    segments can never be returned to the registry. *)
