examples/web_explore.mli:
