open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Heap_obj = Bmx_memory.Heap_obj
module Value = Bmx_memory.Value
module Rvm = Bmx_rvm.Rvm

type status = Active | Committed | Aborted

exception Conflict of string

type t = {
  cluster : Cluster.t;
  node : Ids.Node.t;
  mutable status : status;
  read_set : Addr.t Ids.Uid_tbl.t; (* uid -> current local address *)
  write_set : Addr.t Ids.Uid_tbl.t;
  mutable undo : (Ids.Uid.t * int * Value.t) list; (* newest first *)
  mutable allocs : Addr.t list;
}

let status t = t.status

let begin_ cluster ~node =
  {
    cluster;
    node;
    status = Active;
    read_set = Ids.Uid_tbl.create 16;
    write_set = Ids.Uid_tbl.create 16;
    undo = [];
    allocs = [];
  }

let ensure_active t =
  if t.status <> Active then failwith "Txn: transaction is not active"

let proto t = Cluster.proto t.cluster

let uid_of t addr =
  match Protocol.uid_of_addr (proto t) addr with
  | Some uid -> uid
  | None -> failwith "Txn: dangling address"

let acquire t addr kind =
  try Protocol.acquire (proto t) ~node:t.node addr kind
  with Failure msg when msg = "Protocol.acquire: write token held elsewhere"
                        || msg = "Protocol: invalidating a held token (missing release?)"
    -> raise (Conflict msg)

(* The object's current local address under a token this transaction
   already holds, acquiring one if needed. *)
let locked_addr t ~want_write addr =
  let uid = uid_of t addr in
  match Ids.Uid_tbl.find_opt t.write_set uid with
  | Some a -> a
  | None -> (
      match (want_write, Ids.Uid_tbl.find_opt t.read_set uid) with
      | false, Some a -> a
      | true, Some _ | true, None ->
          (* Upgrade or fresh write lock. *)
          let a = acquire t addr `Write in
          Ids.Uid_tbl.remove t.read_set uid;
          Ids.Uid_tbl.replace t.write_set uid a;
          a
      | false, None ->
          let a = acquire t addr `Read in
          Ids.Uid_tbl.replace t.read_set uid a;
          a)

let read t addr i =
  ensure_active t;
  let a = locked_addr t ~want_write:false addr in
  Protocol.read_field (proto t) ~node:t.node a i

let write t addr i v =
  ensure_active t;
  let a = locked_addr t ~want_write:true addr in
  let before = Protocol.read_field (proto t) ~node:t.node a i in
  t.undo <- (uid_of t a, i, before) :: t.undo;
  Bmx_gc.Barrier.write_field (Cluster.gc t.cluster) ~node:t.node a i v

let alloc t ~bunch fields =
  ensure_active t;
  let a = Cluster.alloc t.cluster ~node:t.node ~bunch fields in
  t.allocs <- a :: t.allocs;
  let uid = uid_of t a in
  Ids.Uid_tbl.replace t.write_set uid a;
  a

let current t addr =
  let uid = uid_of t addr in
  match Ids.Uid_tbl.find_opt t.write_set uid with
  | Some a -> a
  | None -> (
      match Ids.Uid_tbl.find_opt t.read_set uid with
      | Some a -> a
      | None ->
          Store.current_addr (Protocol.store (proto t) t.node) addr)

let release_all t =
  let release _uid a = Protocol.release (proto t) ~node:t.node a in
  Ids.Uid_tbl.iter release t.read_set;
  Ids.Uid_tbl.iter release t.write_set

let commit ?durable t =
  ensure_active t;
  (match durable with
  | None -> ()
  | Some disk ->
      (* One RVM transaction covers the whole write-set: after a crash,
         either every after-image is visible or none (§2.1, §8). *)
      Rvm.begin_tx disk;
      Ids.Uid_tbl.iter
        (fun _uid a ->
          match Store.resolve (Protocol.store (proto t) t.node) a with
          | Some (a', obj) -> Rvm.set disk a' (a', Heap_obj.to_image obj)
          | None -> ())
        t.write_set;
      Rvm.commit disk);
  release_all t;
  t.status <- Committed

let abort t =
  ensure_active t;
  (* Before-images go back in reverse order, under the still-held write
     tokens; restores run through the barrier so restored references
     regain their SSPs. *)
  List.iter
    (fun (uid, i, before) ->
      match Ids.Uid_tbl.find_opt t.write_set uid with
      | Some a -> Bmx_gc.Barrier.write_field (Cluster.gc t.cluster) ~node:t.node a i before
      | None -> ())
    t.undo;
  release_all t;
  t.status <- Aborted

let read_set_size t = Ids.Uid_tbl.length t.read_set
let write_set_size t = Ids.Uid_tbl.length t.write_set
