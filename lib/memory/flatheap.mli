(** Flat object arena: every object's header, version and fields live as
    native ints in one growable [Bigarray], addressed by slot base.

    Slot layout in words: [gen; version; nfields; field0 … fieldN-1],
    fields raw-tagged as by {!Value.to_raw}.  Handles carry the
    generation stamped at {!alloc}; {!free} poisons it, so any access
    through a stale handle raises [Invalid_argument] instead of reading
    whatever object recycled the slot.  Freed slots are recycled by
    per-arity free lists, so arena growth tracks the peak live heap.

    One bit of mark bitmap per arena word supports O(1) trace-membership;
    the discipline is mark-then-unmark (each trace clears exactly what it
    set), never a full clear. *)

type t

val create : ?initial_words:int -> unit -> t
val default : t
(** Arena used by bare [Heap_obj.make] calls (tests, baselines). *)

val id : t -> int
(** Small unique arena id, for packing cross-arena slot keys. *)

val capacity : t -> int
val live : t -> int
(** Number of currently allocated (un-freed) slots — O(1). *)

val used_words : t -> int

val alloc : t -> nfields:int -> int * int
(** Fresh zero-filled (all-nil) slot; returns [(base, gen)]. *)

val free : t -> base:int -> gen:int -> unit
val check : t -> base:int -> gen:int -> unit
val nfields : t -> base:int -> gen:int -> int
val version : t -> base:int -> gen:int -> int
val set_version : t -> base:int -> gen:int -> int -> unit
val bump_version : t -> base:int -> gen:int -> unit
val get_raw : t -> base:int -> gen:int -> int -> int
val set_raw : t -> base:int -> gen:int -> int -> int -> unit

val unsafe_get_raw : t -> base:int -> int -> int
(** No generation or bounds check — for tight loops that just checked. *)

val alloc_copy : t -> src:t -> src_base:int -> src_gen:int -> int * int
(** Allocate in the destination arena and blit fields + version from the
    source slot (same or another arena).  The collector's object-copy
    primitive; bumps [Perfcount.flat_words_copied]. *)

val blit_fields :
  src:t -> src_base:int -> src_gen:int ->
  dst:t -> dst_base:int -> dst_gen:int -> unit
(** Copy fields + version between same-arity live slots. *)

val mark : t -> base:int -> unit
val unmark : t -> base:int -> unit
val is_marked : t -> base:int -> bool
